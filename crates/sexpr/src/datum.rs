//! Parsed S-expressions.

use std::rc::Rc;

use crate::intern::{sym, Sym};
use crate::span::Span;

/// A parsed S-expression with its source [`Span`].
///
/// `Datum` is the interchange type between the reader and the expander.
/// Compound data is reference-counted, so cloning a datum is cheap.
///
/// # Examples
///
/// ```
/// use cm_sexpr::{parse_str, sym};
/// # fn main() -> Result<(), cm_sexpr::ReadError> {
/// let d = &parse_str("(a b c)")?[0];
/// let elems = d.proper_list().unwrap();
/// assert_eq!(elems[1].as_sym(), Some(sym("b")));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Datum {
    /// The shape of the datum.
    pub kind: DatumKind,
    /// Where the datum came from ([`Span::SYNTH`] if synthesized).
    pub span: Span,
}

/// The shape of a [`Datum`].
#[derive(Debug, Clone, PartialEq)]
pub enum DatumKind {
    /// An exact integer.
    Fixnum(i64),
    /// An inexact real.
    Flonum(f64),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character literal.
    Char(char),
    /// A string literal.
    Str(Rc<str>),
    /// An interned symbol.
    Symbol(Sym),
    /// The empty list `()`.
    Nil,
    /// A cons pair.
    Pair(Rc<(Datum, Datum)>),
    /// A vector literal `#(...)`.
    Vector(Rc<Vec<Datum>>),
}

impl Datum {
    /// Creates a datum with a synthesized span.
    pub fn synth(kind: DatumKind) -> Datum {
        Datum {
            kind,
            span: Span::SYNTH,
        }
    }

    /// A symbol datum (synthesized span).
    pub fn symbol(name: &str) -> Datum {
        Datum::synth(DatumKind::Symbol(sym(name)))
    }

    /// A symbol datum from an already-interned [`Sym`].
    pub fn from_sym(s: Sym) -> Datum {
        Datum::synth(DatumKind::Symbol(s))
    }

    /// A fixnum datum.
    pub fn fixnum(n: i64) -> Datum {
        Datum::synth(DatumKind::Fixnum(n))
    }

    /// A boolean datum.
    pub fn bool(b: bool) -> Datum {
        Datum::synth(DatumKind::Bool(b))
    }

    /// The empty list.
    pub fn nil() -> Datum {
        Datum::synth(DatumKind::Nil)
    }

    /// A cons pair.
    pub fn cons(car: Datum, cdr: Datum) -> Datum {
        Datum::synth(DatumKind::Pair(Rc::new((car, cdr))))
    }

    /// Builds a proper list from `items`.
    pub fn list(items: impl IntoIterator<Item = Datum>) -> Datum {
        let items: Vec<Datum> = items.into_iter().collect();
        let mut out = Datum::nil();
        for item in items.into_iter().rev() {
            out = Datum::cons(item, out);
        }
        out
    }

    /// Returns the symbol if this datum is one.
    pub fn as_sym(&self) -> Option<Sym> {
        match self.kind {
            DatumKind::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this datum is the symbol named `name`.
    pub fn is_sym(&self, name: &str) -> bool {
        self.as_sym() == Some(sym(name))
    }

    /// Returns `(car, cdr)` if this datum is a pair.
    pub fn as_pair(&self) -> Option<(&Datum, &Datum)> {
        match &self.kind {
            DatumKind::Pair(p) => Some((&p.0, &p.1)),
            _ => None,
        }
    }

    /// Whether this datum is `()` or a pair chain ending in `()`.
    pub fn is_list(&self) -> bool {
        let mut cur = self;
        loop {
            match &cur.kind {
                DatumKind::Nil => return true,
                DatumKind::Pair(p) => cur = &p.1,
                _ => return false,
            }
        }
    }

    /// Collects a proper list into a `Vec`, or `None` for improper
    /// lists/non-lists.
    pub fn proper_list(&self) -> Option<Vec<Datum>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match &cur.kind {
                DatumKind::Nil => return Some(out),
                DatumKind::Pair(p) => {
                    out.push(p.0.clone());
                    cur = &p.1;
                }
                _ => return None,
            }
        }
    }

    /// Iterates over the elements of a (possibly improper) list; the
    /// iterator yields each car and stops at the first non-pair tail.
    pub fn list_iter(&self) -> ListIter<'_> {
        ListIter { cur: self }
    }
}

/// Iterator over the cars of a pair chain; see [`Datum::list_iter`].
#[derive(Debug, Clone)]
pub struct ListIter<'a> {
    cur: &'a Datum,
}

impl<'a> ListIter<'a> {
    /// The remaining tail (useful for inspecting improper lists).
    pub fn tail(&self) -> &'a Datum {
        self.cur
    }
}

impl<'a> Iterator for ListIter<'a> {
    type Item = &'a Datum;

    fn next(&mut self) -> Option<&'a Datum> {
        match &self.cur.kind {
            DatumKind::Pair(p) => {
                self.cur = &p.1;
                Some(&p.0)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_round_trip() {
        let d = Datum::list([Datum::fixnum(1), Datum::fixnum(2), Datum::fixnum(3)]);
        assert!(d.is_list());
        let v = d.proper_list().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].kind, DatumKind::Fixnum(3));
    }

    #[test]
    fn improper_list_is_not_proper() {
        let d = Datum::cons(Datum::fixnum(1), Datum::fixnum(2));
        assert!(!d.is_list());
        assert!(d.proper_list().is_none());
        let mut it = d.list_iter();
        assert_eq!(it.next().unwrap().kind, DatumKind::Fixnum(1));
        assert!(it.next().is_none());
        assert_eq!(it.tail().kind, DatumKind::Fixnum(2));
    }

    #[test]
    fn sym_helpers() {
        let d = Datum::symbol("lambda");
        assert!(d.is_sym("lambda"));
        assert!(!d.is_sym("define"));
        assert_eq!(d.as_sym().unwrap().name(), "lambda");
    }

    #[test]
    fn empty_list_is_proper() {
        assert!(Datum::nil().is_list());
        assert_eq!(Datum::nil().proper_list().unwrap().len(), 0);
    }
}
