//! The reader: turns token streams into [`Datum`]s.

use std::fmt;
use std::rc::Rc;

use crate::datum::{Datum, DatumKind};
use crate::intern::sym;
use crate::lexer::{LexError, Lexer, Token, TokenKind};
use crate::span::Span;

/// An error produced while reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// Human-readable description, lowercase, no trailing punctuation.
    pub message: String,
    /// Location of the offending text.
    pub span: Span,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ReadError {}

impl From<LexError> for ReadError {
    fn from(e: LexError) -> ReadError {
        ReadError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Reads every datum in `src`.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input (unbalanced parentheses,
/// misplaced dots, bad literals).
///
/// # Examples
///
/// ```
/// use cm_sexpr::parse_str;
/// let data = parse_str("1 (2 3) #(4)").unwrap();
/// assert_eq!(data.len(), 3);
/// ```
pub fn parse_str(src: &str) -> Result<Vec<Datum>, ReadError> {
    Reader::new(src).read_all()
}

/// A pull-based reader over source text.
///
/// Use [`Reader::read`] to pull one datum at a time or
/// [`Reader::read_all`] to drain the input.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Token>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `src`.
    pub fn new(src: &'a str) -> Reader<'a> {
        Reader {
            lexer: Lexer::new(src),
            lookahead: None,
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, ReadError> {
        if let Some(t) = self.lookahead.take() {
            return Ok(Some(t));
        }
        Ok(self.lexer.next_token()?)
    }

    fn push_back(&mut self, t: Token) {
        debug_assert!(self.lookahead.is_none());
        self.lookahead = Some(t);
    }

    /// Reads the next datum, or `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError`] on malformed input.
    pub fn read(&mut self) -> Result<Option<Datum>, ReadError> {
        loop {
            let Some(tok) = self.next_token()? else {
                return Ok(None);
            };
            match tok.kind {
                TokenKind::DatumComment => {
                    // Read and discard the next datum.
                    if self.read()?.is_none() {
                        return Err(ReadError {
                            message: "expected datum after '#;'".into(),
                            span: tok.span,
                        });
                    }
                }
                _ => return self.read_after(tok).map(Some),
            }
        }
    }

    /// Reads every remaining datum.
    ///
    /// # Errors
    ///
    /// Returns a [`ReadError`] on malformed input.
    pub fn read_all(&mut self) -> Result<Vec<Datum>, ReadError> {
        let mut out = Vec::new();
        while let Some(d) = self.read()? {
            out.push(d);
        }
        Ok(out)
    }

    fn must_read(&mut self, after: &Token, what: &str) -> Result<Datum, ReadError> {
        self.read()?.ok_or_else(|| ReadError {
            message: format!("expected {what}"),
            span: after.span,
        })
    }

    fn read_after(&mut self, tok: Token) -> Result<Datum, ReadError> {
        let span = tok.span;
        match tok.kind {
            TokenKind::Fixnum(n) => Ok(Datum {
                kind: DatumKind::Fixnum(n),
                span,
            }),
            TokenKind::Flonum(f) => Ok(Datum {
                kind: DatumKind::Flonum(f),
                span,
            }),
            TokenKind::Bool(b) => Ok(Datum {
                kind: DatumKind::Bool(b),
                span,
            }),
            TokenKind::Char(c) => Ok(Datum {
                kind: DatumKind::Char(c),
                span,
            }),
            TokenKind::Str(s) => Ok(Datum {
                kind: DatumKind::Str(Rc::from(s.as_str())),
                span,
            }),
            TokenKind::Ident(name) => Ok(Datum {
                kind: DatumKind::Symbol(sym(&name)),
                span,
            }),
            TokenKind::Quote => self.read_prefixed("quote", &tok),
            TokenKind::Quasiquote => self.read_prefixed("quasiquote", &tok),
            TokenKind::Unquote => self.read_prefixed("unquote", &tok),
            TokenKind::UnquoteSplicing => self.read_prefixed("unquote-splicing", &tok),
            TokenKind::LParen => self.read_list(span, TokenKind::RParen),
            TokenKind::LBracket => self.read_list(span, TokenKind::RBracket),
            TokenKind::VecOpen => self.read_vector(span),
            TokenKind::RParen | TokenKind::RBracket => Err(ReadError {
                message: "unexpected close parenthesis".into(),
                span,
            }),
            TokenKind::Dot => Err(ReadError {
                message: "unexpected '.'".into(),
                span,
            }),
            TokenKind::DatumComment => unreachable!("handled by read"),
        }
    }

    fn read_prefixed(&mut self, head: &str, tok: &Token) -> Result<Datum, ReadError> {
        let inner = self.must_read(tok, &format!("datum after '{head}' prefix"))?;
        let span = tok.span.merge(inner.span);
        Ok(Datum {
            kind: Datum::list([Datum::symbol(head), inner]).kind,
            span,
        })
    }

    fn read_list(&mut self, open: Span, close: TokenKind) -> Result<Datum, ReadError> {
        let mut items: Vec<Datum> = Vec::new();
        let mut tail: Option<Datum> = None;
        loop {
            let Some(tok) = self.next_token()? else {
                return Err(ReadError {
                    message: "unterminated list".into(),
                    span: open,
                });
            };
            match &tok.kind {
                k if *k == close => {
                    let end = tok.span;
                    let mut out = tail.unwrap_or_else(Datum::nil);
                    for item in items.into_iter().rev() {
                        out = Datum::cons(item, out);
                    }
                    out.span = open.merge(end);
                    return Ok(out);
                }
                TokenKind::RParen | TokenKind::RBracket => {
                    return Err(ReadError {
                        message: "mismatched close parenthesis".into(),
                        span: tok.span,
                    });
                }
                TokenKind::Dot => {
                    if items.is_empty() || tail.is_some() {
                        return Err(ReadError {
                            message: "misplaced '.' in list".into(),
                            span: tok.span,
                        });
                    }
                    tail = Some(self.must_read(&tok, "datum after '.'")?);
                }
                TokenKind::DatumComment => {
                    if self.read()?.is_none() {
                        return Err(ReadError {
                            message: "expected datum after '#;'".into(),
                            span: tok.span,
                        });
                    }
                }
                _ => {
                    if tail.is_some() {
                        return Err(ReadError {
                            message: "more than one datum after '.'".into(),
                            span: tok.span,
                        });
                    }
                    self.push_back(tok);
                    let Some(d) = self.read()? else {
                        return Err(ReadError {
                            message: "unterminated list".into(),
                            span: open,
                        });
                    };
                    items.push(d);
                }
            }
        }
    }

    fn read_vector(&mut self, open: Span) -> Result<Datum, ReadError> {
        let mut items = Vec::new();
        loop {
            let Some(tok) = self.next_token()? else {
                return Err(ReadError {
                    message: "unterminated vector".into(),
                    span: open,
                });
            };
            match tok.kind {
                TokenKind::RParen => {
                    let span = open.merge(tok.span);
                    return Ok(Datum {
                        kind: DatumKind::Vector(Rc::new(items)),
                        span,
                    });
                }
                TokenKind::Dot => {
                    return Err(ReadError {
                        message: "'.' not allowed in vector".into(),
                        span: tok.span,
                    });
                }
                _ => {
                    self.push_back(tok);
                    let Some(d) = self.read()? else {
                        return Err(ReadError {
                            message: "unterminated vector".into(),
                            span: open,
                        });
                    };
                    items.push(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::write_datum;

    fn one(src: &str) -> Datum {
        let v = parse_str(src).unwrap();
        assert_eq!(v.len(), 1, "expected one datum in {src:?}");
        v.into_iter().next().unwrap()
    }

    #[test]
    fn reads_atoms() {
        assert_eq!(one("42").kind, DatumKind::Fixnum(42));
        assert_eq!(one("#t").kind, DatumKind::Bool(true));
        assert!(one("foo").is_sym("foo"));
    }

    #[test]
    fn reads_nested_lists() {
        let d = one("(a (b c) d)");
        let v = d.proper_list().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1].proper_list().unwrap().len(), 2);
    }

    #[test]
    fn brackets_interchangeable_but_matched() {
        let d = one("(let ([x 1]) x)");
        assert!(d.is_list());
        assert!(parse_str("(a]").is_err());
        assert!(parse_str("[a)").is_err());
    }

    #[test]
    fn reads_improper_list() {
        let d = one("(1 . 2)");
        let (car, cdr) = d.as_pair().unwrap();
        assert_eq!(car.kind, DatumKind::Fixnum(1));
        assert_eq!(cdr.kind, DatumKind::Fixnum(2));
    }

    #[test]
    fn reads_dotted_tail_list() {
        let d = one("(1 2 . 3)");
        assert!(!d.is_list());
        assert_eq!(write_datum(&d), "(1 2 . 3)");
    }

    #[test]
    fn quote_expansion() {
        assert_eq!(write_datum(&one("'x")), "(quote x)");
        assert_eq!(
            write_datum(&one("`(a ,b ,@c)")),
            "(quasiquote (a (unquote b) (unquote-splicing c)))"
        );
    }

    #[test]
    fn reads_vectors() {
        let d = one("#(1 2 3)");
        match &d.kind {
            DatumKind::Vector(v) => assert_eq!(v.len(), 3),
            other => panic!("expected vector, got {other:?}"),
        }
    }

    #[test]
    fn datum_comments_drop_data() {
        let v = parse_str("(a #;(skip me) b)").unwrap();
        assert_eq!(write_datum(&v[0]), "(a b)");
        let v = parse_str("#;1 2").unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, DatumKind::Fixnum(2));
    }

    #[test]
    fn misplaced_dots_are_errors() {
        assert!(parse_str("(. a)").is_err());
        assert!(parse_str("(a . b c)").is_err());
        assert!(parse_str("(a . b . c)").is_err());
        assert!(parse_str(".").is_err());
        assert!(parse_str("#(1 . 2)").is_err());
    }

    #[test]
    fn unbalanced_parens_are_errors() {
        assert!(parse_str("(a b").is_err());
        assert!(parse_str(")").is_err());
        assert!(parse_str("#(1 2").is_err());
        assert!(parse_str("'").is_err());
    }

    #[test]
    fn spans_cover_lists() {
        let d = one("  (a b)");
        assert_eq!(d.span, Span::new(2, 7));
    }
}
