//! Byte-offset source spans.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text a datum was
/// read from.
///
/// Spans exist for diagnostics only; they never affect evaluation. A datum
/// constructed programmatically (rather than by the reader) carries
/// [`Span::SYNTH`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// The span used for synthesized (non-reader-produced) data.
    pub const SYNTH: Span = Span { start: 0, end: 0 };

    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether this is the synthesized (empty) span.
    pub fn is_synthetic(self) -> bool {
        self == Span::SYNTH
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn synthetic_span_is_detectable() {
        assert!(Span::SYNTH.is_synthetic());
        assert!(!Span::new(0, 1).is_synthetic());
    }

    #[test]
    fn display_formats_range() {
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }
}
