//! Symbol interning.
//!
//! Symbols are the identifier currency of the whole engine: the expander,
//! the compiler's environments, and the VM's global table all key on
//! [`Sym`]. Interning makes symbol equality a `u32` compare and keeps
//! `Datum`/`Value` cheap to clone.
//!
//! The interner is process-global and thread-safe so that symbols created on
//! one thread (e.g. by a test) compare equal to the same spelling created on
//! another. The engine itself is single-threaded, but `cargo test` is not.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned symbol.
///
/// Two `Sym`s are equal iff their names are equal. Use [`sym`] to intern a
/// name and [`Sym::name`] (or [`sym_name`]) to recover the spelling.
///
/// # Examples
///
/// ```
/// use cm_sexpr::sym;
/// assert_eq!(sym("lambda"), sym("lambda"));
/// assert_ne!(sym("lambda"), sym("Lambda"));
/// assert_eq!(sym("car").name(), "car");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
    gensym_counter: u64,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
            gensym_counter: 0,
        })
    })
}

/// Interns `name`, returning its unique [`Sym`].
pub fn sym(name: &str) -> Sym {
    let mut i = interner().lock().expect("interner poisoned");
    if let Some(&id) = i.ids.get(name) {
        return Sym(id);
    }
    let id = u32::try_from(i.names.len()).expect("interner overflow");
    // Leaking is fine: the set of distinct symbols in a program is small and
    // the interner lives for the whole process anyway.
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    i.names.push(leaked);
    i.ids.insert(leaked, id);
    Sym(id)
}

/// Returns the spelling of `s`.
pub fn sym_name(s: Sym) -> &'static str {
    let i = interner().lock().expect("interner poisoned");
    i.names[s.0 as usize]
}

impl Sym {
    /// Returns the spelling of this symbol.
    pub fn name(self) -> &'static str {
        sym_name(self)
    }

    /// Creates a fresh symbol guaranteed not to collide with any symbol the
    /// reader can produce (the spelling contains a `#`).
    ///
    /// Used by the expander for hygiene-ish renaming and by library macros
    /// that need private keys.
    pub fn gensym(base: &str) -> Sym {
        let n = {
            let mut i = interner().lock().expect("interner poisoned");
            i.gensym_counter += 1;
            i.gensym_counter
        };
        sym(&format!("{base}#{n}"))
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.name())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(sym("foo"), sym("foo"));
        assert_eq!(sym("foo").name(), "foo");
    }

    #[test]
    fn distinct_names_distinct_syms() {
        assert_ne!(sym("foo"), sym("bar"));
    }

    #[test]
    fn gensym_is_fresh() {
        let a = Sym::gensym("tmp");
        let b = Sym::gensym("tmp");
        assert_ne!(a, b);
        assert!(a.name().starts_with("tmp#"));
    }

    #[test]
    fn symbols_are_shared_across_threads() {
        let a = sym("cross-thread");
        let b = std::thread::spawn(|| sym("cross-thread")).join().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(sym("display-me").to_string(), "display-me");
    }
}
