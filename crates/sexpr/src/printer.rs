//! Printers for [`Datum`].
//!
//! [`write_datum`] produces reader-compatible text (strings quoted and
//! escaped, characters in `#\x` form); [`display_datum`] produces
//! human-oriented text (string and character contents verbatim), matching
//! Scheme's `write`/`display` distinction.

use std::fmt::Write as _;

use crate::datum::{Datum, DatumKind};

/// Renders `d` in `write` (reader-compatible) notation.
///
/// # Examples
///
/// ```
/// use cm_sexpr::{parse_str, write_datum};
/// let d = &parse_str(r#"("hi" #\a (1 . 2))"#).unwrap()[0];
/// assert_eq!(write_datum(d), r#"("hi" #\a (1 . 2))"#);
/// ```
pub fn write_datum(d: &Datum) -> String {
    let mut out = String::new();
    print_datum(&mut out, d, true);
    out
}

/// Renders `d` in `display` (human-oriented) notation.
pub fn display_datum(d: &Datum) -> String {
    let mut out = String::new();
    print_datum(&mut out, d, false);
    out
}

fn print_datum(out: &mut String, d: &Datum, write: bool) {
    match &d.kind {
        DatumKind::Fixnum(n) => {
            let _ = write!(out, "{n}");
        }
        DatumKind::Flonum(f) => print_flonum(out, *f),
        DatumKind::Bool(true) => out.push_str("#t"),
        DatumKind::Bool(false) => out.push_str("#f"),
        DatumKind::Char(c) => {
            if write {
                print_char(out, *c);
            } else {
                out.push(*c);
            }
        }
        DatumKind::Str(s) => {
            if write {
                print_string(out, s);
            } else {
                out.push_str(s);
            }
        }
        DatumKind::Symbol(s) => out.push_str(s.name()),
        DatumKind::Nil => out.push_str("()"),
        DatumKind::Pair(_) => {
            out.push('(');
            let mut it = d.list_iter();
            let mut first = true;
            for item in it.by_ref() {
                if !first {
                    out.push(' ');
                }
                first = false;
                print_datum(out, item, write);
            }
            if !matches!(it.tail().kind, DatumKind::Nil) {
                out.push_str(" . ");
                print_datum(out, it.tail(), write);
            }
            out.push(')');
        }
        DatumKind::Vector(v) => {
            out.push_str("#(");
            for (i, item) in v.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                print_datum(out, item, write);
            }
            out.push(')');
        }
    }
}

/// Prints a flonum so it reads back as a flonum (always with a decimal
/// point or exponent).
pub(crate) fn print_flonum(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("+nan.0");
    } else if f.is_infinite() {
        out.push_str(if f > 0.0 { "+inf.0" } else { "-inf.0" });
    } else {
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

pub(crate) fn print_char(out: &mut String, c: char) {
    out.push_str("#\\");
    match c {
        ' ' => out.push_str("space"),
        '\n' => out.push_str("newline"),
        '\t' => out.push_str("tab"),
        '\r' => out.push_str("return"),
        '\0' => out.push_str("nul"),
        _ => out.push(c),
    }
}

pub(crate) fn print_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_str;

    #[test]
    fn write_escapes_strings() {
        let d = &parse_str(r#""a\nb""#).unwrap()[0];
        assert_eq!(write_datum(d), r#""a\nb""#);
        assert_eq!(display_datum(d), "a\nb");
    }

    #[test]
    fn flonums_keep_a_point() {
        let d = &parse_str("2.0").unwrap()[0];
        assert_eq!(write_datum(d), "2.0");
    }

    #[test]
    fn chars_write_and_display() {
        let d = &parse_str(r"#\space").unwrap()[0];
        assert_eq!(write_datum(d), r"#\space");
        assert_eq!(display_datum(d), " ");
    }

    #[test]
    fn nested_structures_round_trip() {
        for src in [
            "(1 2 3)",
            "(a . b)",
            "(a b . c)",
            "#(1 (2) #(3))",
            "(quote (x))",
            "()",
            "(#t #f)",
        ] {
            let d = &parse_str(src).unwrap()[0];
            assert_eq!(write_datum(d), src, "round-trip of {src}");
        }
    }
}
