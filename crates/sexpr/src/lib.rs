//! S-expression front end for the continuation-marks engine.
//!
//! This crate provides the lexical substrate shared by every other crate in
//! the workspace:
//!
//! * [`Sym`] — cheap interned symbols with O(1) equality,
//! * [`Datum`] — parsed S-expressions with source [`Span`]s,
//! * [`Reader`] — a full Scheme reader (quotes, quasiquote, vectors, block
//!   and datum comments, improper lists, characters),
//! * [`write_datum`]/[`display_datum`] — printers that round-trip through
//!   the reader.
//!
//! # Examples
//!
//! ```
//! use cm_sexpr::{parse_str, Datum};
//!
//! # fn main() -> Result<(), cm_sexpr::ReadError> {
//! let data = parse_str("(with-continuation-mark 'key 42 (body))")?;
//! assert_eq!(data.len(), 1);
//! assert!(data[0].is_list());
//! # Ok(())
//! # }
//! ```

mod datum;
mod intern;
mod lexer;
mod printer;
mod reader;
mod span;

pub use datum::{Datum, DatumKind, ListIter};
pub use intern::{sym, sym_name, Sym};
pub use lexer::{LexError, Lexer, Token, TokenKind};
pub use printer::{display_datum, write_datum};
pub use reader::{parse_str, ReadError, Reader};
pub use span::Span;
