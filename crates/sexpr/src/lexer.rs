//! The Scheme lexer.
//!
//! Produces a stream of [`Token`]s for the [`Reader`](crate::Reader).
//! Handles line comments (`;`), nestable block comments (`#| ... |#`),
//! datum-comment markers (`#;`), booleans, characters, strings with escapes,
//! fixnums, flonums, and identifiers.

use std::fmt;

use crate::span::Span;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[` — treated identically to `(` but must match `]`.
    LBracket,
    /// `]`
    RBracket,
    /// `'`
    Quote,
    /// `` ` ``
    Quasiquote,
    /// `,`
    Unquote,
    /// `,@`
    UnquoteSplicing,
    /// `.` used as the improper-list dot.
    Dot,
    /// `#(` — vector open.
    VecOpen,
    /// `#;` — comment out the next datum.
    DatumComment,
    /// `#t` / `#f`
    Bool(bool),
    /// `#\a`, `#\space`, ...
    Char(char),
    /// A string literal (contents already unescaped).
    Str(String),
    /// An exact integer.
    Fixnum(i64),
    /// An inexact real.
    Flonum(f64),
    /// An identifier.
    Ident(String),
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description, lowercase, no trailing punctuation.
    pub message: String,
    /// Location of the offending text.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// A streaming tokenizer over `&str` input.
///
/// # Examples
///
/// ```
/// use cm_sexpr::{Lexer, TokenKind};
/// let mut lx = Lexer::new("(+ 1 2.5)");
/// let kinds: Vec<_> = std::iter::from_fn(|| lx.next_token().transpose())
///     .collect::<Result<Vec<_>, _>>()
///     .unwrap()
///     .into_iter()
///     .map(|t| t.kind)
///     .collect();
/// assert_eq!(kinds[0], TokenKind::LParen);
/// assert_eq!(kinds[2], TokenKind::Fixnum(1));
/// assert_eq!(kinds[3], TokenKind::Flonum(2.5));
/// ```
#[derive(Debug, Clone)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn err(&self, start: usize, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            span: Span::new(start as u32, self.pos as u32),
        }
    }

    fn skip_atmosphere(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'#') if self.peek2() == Some(b'|') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'#'), Some(b'|')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(b'|'), Some(b'#')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => return Err(self.err(start, "unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn is_delimiter(b: u8) -> bool {
        matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';') || b.is_ascii_whitespace()
    }

    fn lex_string(&mut self, start: usize) -> Result<TokenKind, LexError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(start, "unterminated string literal")),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'0') => out.push('\0'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(other) => {
                        return Err(self.err(
                            start,
                            format!("unknown string escape '\\{}'", other as char),
                        ))
                    }
                    None => return Err(self.err(start, "unterminated string escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-decode the UTF-8 sequence we just stepped into.
                    let rest = &self.src[self.pos - 1..];
                    let c = rest.chars().next().expect("valid utf-8");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn lex_char(&mut self, start: usize) -> Result<TokenKind, LexError> {
        // Called after consuming `#\`.
        let rest = &self.src[self.pos..];
        let c = rest
            .chars()
            .next()
            .ok_or_else(|| self.err(start, "unterminated character literal"))?;
        self.pos += c.len_utf8();
        // Multi-character names: keep consuming alphabetic chars.
        if c.is_ascii_alphabetic() {
            let name_start = self.pos - 1;
            while let Some(b) = self.peek() {
                if Self::is_delimiter(b) {
                    break;
                }
                self.pos += 1;
            }
            let name = &self.src[name_start..self.pos];
            if name.len() > 1 {
                return match name {
                    "space" => Ok(TokenKind::Char(' ')),
                    "newline" | "linefeed" => Ok(TokenKind::Char('\n')),
                    "tab" => Ok(TokenKind::Char('\t')),
                    "return" => Ok(TokenKind::Char('\r')),
                    "nul" | "null" => Ok(TokenKind::Char('\0')),
                    _ => Err(self.err(start, format!("unknown character name '{name}'"))),
                };
            }
        }
        Ok(TokenKind::Char(c))
    }

    fn lex_atom(&mut self, start: usize) -> Result<TokenKind, LexError> {
        while let Some(b) = self.peek() {
            if Self::is_delimiter(b) {
                break;
            }
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        debug_assert!(!text.is_empty());
        if text == "." {
            return Ok(TokenKind::Dot);
        }
        if let Some(kind) = parse_number(text) {
            return Ok(kind);
        }
        Ok(TokenKind::Ident(text.to_owned()))
    }

    /// Returns the next token, `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] for malformed literals or unterminated
    /// comments/strings.
    pub fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_atmosphere()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let kind = match b {
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b'[' => {
                self.pos += 1;
                TokenKind::LBracket
            }
            b']' => {
                self.pos += 1;
                TokenKind::RBracket
            }
            b'\'' => {
                self.pos += 1;
                TokenKind::Quote
            }
            b'`' => {
                self.pos += 1;
                TokenKind::Quasiquote
            }
            b',' => {
                self.pos += 1;
                if self.peek() == Some(b'@') {
                    self.pos += 1;
                    TokenKind::UnquoteSplicing
                } else {
                    TokenKind::Unquote
                }
            }
            b'"' => {
                self.pos += 1;
                self.lex_string(start)?
            }
            b'#' => match self.peek2() {
                Some(b'(') => {
                    self.pos += 2;
                    TokenKind::VecOpen
                }
                Some(b';') => {
                    self.pos += 2;
                    TokenKind::DatumComment
                }
                Some(b't') => {
                    self.pos += 2;
                    TokenKind::Bool(true)
                }
                Some(b'f') => {
                    self.pos += 2;
                    TokenKind::Bool(false)
                }
                Some(b'\\') => {
                    self.pos += 2;
                    self.lex_char(start)?
                }
                Some(b'%') => self.lex_atom(start)?, // #%primitive-style identifiers
                other => {
                    self.pos += 1;
                    return Err(self.err(
                        start,
                        format!(
                            "unknown '#' syntax{}",
                            other
                                .map(|b| format!(" '#{}'", b as char))
                                .unwrap_or_default()
                        ),
                    ));
                }
            },
            _ => self.lex_atom(start)?,
        };
        Ok(Some(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        }))
    }
}

/// Parses `text` as a fixnum or flonum, if it is one.
fn parse_number(text: &str) -> Option<TokenKind> {
    let stripped = text.strip_prefix(['+', '-']).unwrap_or(text);
    if stripped.is_empty() || !stripped.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return None;
    }
    if let Ok(n) = text.parse::<i64>() {
        return Some(TokenKind::Fixnum(n));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Some(TokenKind::Flonum(f));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        while let Some(t) = lx.next_token().unwrap() {
            out.push(t.kind);
        }
        out
    }

    #[test]
    fn lexes_parens_and_atoms() {
        assert_eq!(
            kinds("(foo 42)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("foo".into()),
                TokenKind::Fixnum(42),
                TokenKind::RParen
            ]
        );
    }

    #[test]
    fn brackets_are_distinct_tokens() {
        assert_eq!(
            kinds("[x]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Ident("x".into()),
                TokenKind::RBracket
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("-7"), vec![TokenKind::Fixnum(-7)]);
        assert_eq!(kinds("+3"), vec![TokenKind::Fixnum(3)]);
        assert_eq!(kinds("3.25"), vec![TokenKind::Flonum(3.25)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Flonum(1000.0)]);
        // Not numbers:
        assert_eq!(kinds("+"), vec![TokenKind::Ident("+".into())]);
        assert_eq!(kinds("1+"), vec![TokenKind::Ident("1+".into())]);
        assert_eq!(kinds("-"), vec![TokenKind::Ident("-".into())]);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![TokenKind::Str("a\nb\"c".into())]
        );
    }

    #[test]
    fn lexes_unicode_strings() {
        assert_eq!(kinds("\"λx\""), vec![TokenKind::Str("λx".into())]);
    }

    #[test]
    fn lexes_chars() {
        assert_eq!(kinds(r"#\a"), vec![TokenKind::Char('a')]);
        assert_eq!(kinds(r"#\space"), vec![TokenKind::Char(' ')]);
        assert_eq!(kinds(r"#\newline"), vec![TokenKind::Char('\n')]);
        assert_eq!(kinds(r"#\("), vec![TokenKind::Char('(')]);
    }

    #[test]
    fn lexes_booleans_and_quotes() {
        assert_eq!(
            kinds("#t #f 'x `y ,z ,@w"),
            vec![
                TokenKind::Bool(true),
                TokenKind::Bool(false),
                TokenKind::Quote,
                TokenKind::Ident("x".into()),
                TokenKind::Quasiquote,
                TokenKind::Ident("y".into()),
                TokenKind::Unquote,
                TokenKind::Ident("z".into()),
                TokenKind::UnquoteSplicing,
                TokenKind::Ident("w".into()),
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("; hello\nx #| block #| nested |# |# y"),
            vec![TokenKind::Ident("x".into()), TokenKind::Ident("y".into())]
        );
    }

    #[test]
    fn datum_comment_token() {
        assert_eq!(
            kinds("#;(a b) c"),
            vec![
                TokenKind::DatumComment,
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::Ident("c".into())
            ]
        );
    }

    #[test]
    fn dot_token() {
        assert_eq!(
            kinds("(a . b)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::RParen
            ]
        );
        // But `.5` and `a.b` are atoms.
        assert_eq!(kinds(".5"), vec![TokenKind::Flonum(0.5)]);
        assert_eq!(kinds("a.b"), vec![TokenKind::Ident("a.b".into())]);
    }

    #[test]
    fn errors_on_unterminated_string() {
        let mut lx = Lexer::new("\"abc");
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn errors_on_unterminated_block_comment() {
        let mut lx = Lexer::new("#| abc");
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn errors_on_unknown_hash() {
        let mut lx = Lexer::new("#q");
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn spans_track_positions() {
        let mut lx = Lexer::new("  foo");
        let t = lx.next_token().unwrap().unwrap();
        assert_eq!(t.span, Span::new(2, 5));
    }
}
