//! Property tests: printing a datum and re-reading it yields an equal datum.

use cm_sexpr::{parse_str, write_datum, Datum};
use proptest::prelude::*;

fn arb_symbolish() -> impl Strategy<Value = String> {
    // Identifiers that the lexer will read back as a single symbol.
    "[a-zA-Z*+!?<>=-][a-zA-Z0-9*+!?<>=-]{0,8}".prop_filter("reads back as a symbol", |s| {
        parse_str(s)
            .map(|v| v.len() == 1 && v[0].as_sym().is_some())
            .unwrap_or(false)
    })
}

fn arb_datum() -> impl Strategy<Value = Datum> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Datum::fixnum),
        any::<bool>().prop_map(Datum::bool),
        arb_symbolish().prop_map(|s| Datum::symbol(&s)),
        Just(Datum::nil()),
    ];
    leaf.prop_recursive(4, 32, 5, |inner| {
        prop::collection::vec(inner, 0..5).prop_map(Datum::list)
    })
}

proptest! {
    #[test]
    fn print_parse_round_trip(d in arb_datum()) {
        let text = write_datum(&d);
        let parsed = parse_str(&text).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(write_datum(&parsed[0]), text);
    }

    #[test]
    fn reader_never_panics(src in "\\PC{0,64}") {
        let _ = parse_str(&src);
    }
}
