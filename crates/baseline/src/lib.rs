//! Baseline implementations the paper compares against:
//!
//! * [`imitation_engine`] — the figure-3 *imitation* of continuation
//!   attachments, built from `call/cc` and global state with no compiler
//!   or runtime support. Used for the §8.3 speedup measurements and the
//!   §8.4 "imitate" columns.
//! * [`old_racket_engine`] — the old Racket implementation model (eager
//!   per-frame mark stack, slow continuation capture), used as the
//!   figure-5 comparison and the §8.1 "Racket" row.
//! * [`chez_engine`] / [`racket_cs_engine`] — conveniences for the
//!   measured systems themselves.

use cm_core::{Engine, EngineConfig};

const IMITATION: &str = include_str!("imitation.scm");

/// Configuration for the imitation engine: the compiler performs *no*
/// attachment specialization, and every operation goes through the
/// figure-3 library.
pub fn imitation_config() -> EngineConfig {
    let mut c = EngineConfig::racket_cs();
    c.compiler.attachment_opt = false;
    c
}

/// An engine whose attachment operations are the paper's figure-3
/// imitation (call/cc + globals), loaded over the standard prelude.
///
/// # Examples
///
/// ```
/// let mut e = cm_baseline::imitation_engine();
/// let v = e
///     .eval_to_string("(with-continuation-mark 'k 1 (continuation-mark-set->list #f 'k))")
///     .unwrap();
/// assert_eq!(v, "(1)");
/// ```
pub fn imitation_engine() -> Engine {
    let mut e = Engine::new(imitation_config());
    e.eval(IMITATION).expect("imitation library loads");
    e
}

/// The full system without wrapper overhead — "Chez Scheme" rows.
pub fn chez_engine() -> Engine {
    Engine::new(EngineConfig::full())
}

/// The full system with the control wrapper — "Racket CS" rows.
pub fn racket_cs_engine() -> Engine {
    Engine::new(EngineConfig::racket_cs())
}

/// The old Racket model: eager mark stack, expensive capture.
pub fn old_racket_engine() -> Engine {
    Engine::new(EngineConfig::old_racket())
}

/// The §8.2 "unmod" variant: no attachment support at all.
pub fn unmodified_chez_engine() -> Engine {
    Engine::new(EngineConfig::unmodified_chez())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imitation_supports_basic_marks() {
        let mut e = imitation_engine();
        assert_eq!(
            e.eval_to_string(
                "(with-continuation-mark 'k \"red\"
                   (continuation-mark-set-first #f 'k \"?\"))"
            )
            .unwrap(),
            "\"red\""
        );
    }

    #[test]
    fn imitation_tail_set_replaces() {
        let mut e = imitation_engine();
        assert_eq!(
            e.eval_to_string(
                "(define (go)
                   (with-continuation-mark 'k 1
                     (with-continuation-mark 'k 2
                       (continuation-mark-set->list #f 'k))))
                 (go)"
            )
            .unwrap(),
            "(2)"
        );
    }

    #[test]
    fn imitation_nontail_marks_nest() {
        let mut e = imitation_engine();
        assert_eq!(
            e.eval_to_string(
                "(with-continuation-mark 'k 'outer
                   (car (cons (with-continuation-mark 'k 'inner
                                (continuation-mark-set->list #f 'k))
                              0)))"
            )
            .unwrap(),
            "(inner outer)"
        );
    }

    #[test]
    fn imitation_attachment_ops_work() {
        let mut e = imitation_engine();
        assert_eq!(
            e.eval_to_string(
                "(define (f)
                   (call-setting-continuation-attachment 'mine
                     (lambda ()
                       (call-getting-continuation-attachment 'none
                         (lambda (v) v)))))
                 (f)"
            )
            .unwrap(),
            "mine"
        );
    }

    #[test]
    fn imitation_consume_then_get_is_empty() {
        let mut e = imitation_engine();
        assert_eq!(
            e.eval_to_string(
                "(define (f)
                   (call-setting-continuation-attachment 'mine
                     (lambda ()
                       (call-consuming-continuation-attachment 'none
                         (lambda (v)
                           (cons v (call-getting-continuation-attachment 'gone
                                     (lambda (w) w))))))))
                 (f)"
            )
            .unwrap(),
            "(mine . gone)"
        );
    }

    #[test]
    fn engine_constructors_are_distinct() {
        assert!(!imitation_config().compiler.attachment_opt);
        let mut chez = chez_engine();
        assert_eq!(chez.eval_to_string("(+ 1 2)").unwrap(), "3");
        let mut old = old_racket_engine();
        assert_eq!(
            old.eval_to_string(
                "(with-continuation-mark 'k 7 (continuation-mark-set-first #f 'k 0))"
            )
            .unwrap(),
            "7"
        );
    }
}
