;; The paper's figure 3: an imitation of built-in continuation-attachment
;; support using only call/cc and global state. Loading this file
;; *replaces* the runtime's attachment operations, so every
;; with-continuation-mark (compiled in the uniform, unspecialized mode)
;; and every attachment primitive goes through this library instead.
;;
;; `eq?` on continuations detects whether an attachment should replace an
;; existing one: a capture at an already-reified point returns the same
;; underflow record, so the continuations compare eq (as in Chez Scheme).

(define $imitate-ks '(#f))    ; stack of frames with attachments
(define $imitate-atts '())    ; stack of attachments
(define $imitate-none (make-record '$imitate-none))

(define (imitate-call-setting v thunk)
  (call/cc
   (lambda (k)
     (if (eq? k (car $imitate-ks))
         (begin
           ;; Same frame: replace the existing attachment, thunk in tail
           ;; position.
           (set! $imitate-atts (cons v (cdr $imitate-atts)))
           (thunk))
         (let ([r (call/cc
                   (lambda (nested-k)
                     (set! $imitate-ks (cons nested-k $imitate-ks))
                     (set! $imitate-atts (cons v $imitate-atts))
                     (thunk)))])
           (set! $imitate-ks (cdr $imitate-ks))
           (set! $imitate-atts (cdr $imitate-atts))
           r)))))

(define (imitate-call-getting dflt proc)
  (call/cc
   (lambda (k)
     (if (eq? k (car $imitate-ks))
         (let ([v (car $imitate-atts)])
           (if (eq? v $imitate-none) (proc dflt) (proc v)))
         (proc dflt)))))

(define (imitate-call-consuming dflt proc)
  (call/cc
   (lambda (k)
     (if (eq? k (car $imitate-ks))
         (let ([v (car $imitate-atts)])
           ;; Blank out (rather than pop) so the frame's pop-on-return
           ;; bookkeeping in imitate-call-setting stays balanced.
           (set! $imitate-atts (cons $imitate-none (cdr $imitate-atts)))
           (if (eq? v $imitate-none) (proc dflt) (proc v)))
         (proc dflt)))))

(define (imitate-current-attachments)
  (filter (lambda (a) (not (eq? a $imitate-none))) $imitate-atts))

;; Install over both the runtime names (used by the uniform
;; with-continuation-mark expansion) and the public names.
(define $call-setting-attachment imitate-call-setting)
(define $call-getting-attachment imitate-call-getting)
(define $call-consuming-attachment imitate-call-consuming)
(define call-setting-continuation-attachment imitate-call-setting)
(define call-getting-continuation-attachment imitate-call-getting)
(define call-consuming-continuation-attachment imitate-call-consuming)
(define current-continuation-attachments imitate-current-attachments)

;; The marks layer reads attachments through these, so marks keep working
;; over the imitation (continuation-marks on a continuation value is not
;; supported by the imitation).
(define (current-continuation-marks)
  (make-record '$mark-set (imitate-current-attachments)))
