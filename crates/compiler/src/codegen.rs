//! Bytecode generation, including the §7.2 categorization of attachment
//! operations by position:
//!
//! * **tail position** → `ReifySetAttach` / dynamic get/consume (the
//!   machine checks for a reified continuation),
//! * **non-tail, tail call in the body** → `PushAttach` + the call becomes
//!   [`Instr::CallWithAttachment`] so the attachment pops via underflow,
//! * **non-tail, no tail call** → direct `PushAttach`/`PopAttach` with the
//!   presence of attachments resolved statically.
//!
//! The "consume"-then-"set" sequence produced by `with-continuation-mark`
//! compiles the set with `check_replace: false` (the paper's fused fast
//! path), and recognized primitives in attachment bodies avoid reification
//! entirely unless the "no prim" ablation is active.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use cm_vm::{Code, Globals, Instr, Value};

use crate::ast::{Expr, LambdaExpr, TopForm, VarId};
use crate::CompilerConfig;

/// Static knowledge about the current conceptual frame's attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Att {
    /// Unknown — must be checked dynamically (function entry).
    Dynamic,
    /// Proven absent.
    Absent,
    /// Proven present (head of the marks register).
    Present,
}

/// Where an expression's value goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// Tail position of the enclosing function.
    Tail(Att),
    /// Ordinary value position: leave the value on the stack.
    NonTail,
    /// Tail position of a non-tail `with-continuation-mark` body: leave
    /// the value, ensuring the outstanding attachment (if `Present`) is
    /// popped on every exit path.
    WcmBody(Att),
    /// Eager model: tail position of a non-tail mark body whose
    /// conceptual frame's mark-stack entry is outstanding — tail calls
    /// share the entry ([`Instr::EagerCallShared`]); other exits pop it.
    EagerWcmBody,
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    Slot(u16),
    Capture(u16),
}

/// Generates the top-level code object for a program.
pub fn gen_program(
    forms: &[TopForm],
    globals: &Rc<RefCell<Globals>>,
    cfg: &CompilerConfig,
) -> Rc<Code> {
    let mut g = FnGen::new(cfg, globals, "main");
    let n = forms.len();
    for (i, form) in forms.iter().enumerate() {
        let last = i + 1 == n;
        match form {
            TopForm::Define(name, e) => {
                g.compile(e, Ctx::NonTail);
                let id = globals.borrow_mut().intern(*name);
                g.emit(Instr::GlobalSet(id), -1);
                if last {
                    g.konst(Value::Void);
                    g.emit(Instr::Return, -1);
                }
            }
            TopForm::Expr(e) => {
                if last {
                    g.compile(e, Ctx::Tail(Att::Dynamic));
                } else {
                    g.compile(e, Ctx::NonTail);
                    g.emit(Instr::Pop, -1);
                }
            }
        }
    }
    if forms.is_empty() {
        g.konst(Value::Void);
        g.emit(Instr::Return, -1);
    }
    Rc::new(g.finish(0, false))
}

struct FnGen<'a> {
    cfg: &'a CompilerConfig,
    globals: &'a Rc<RefCell<Globals>>,
    name: String,
    instrs: Vec<Instr>,
    consts: Vec<Value>,
    codes: Vec<Rc<Code>>,
    env: HashMap<VarId, Binding>,
    depth: i32,
}

impl<'a> FnGen<'a> {
    fn new(cfg: &'a CompilerConfig, globals: &'a Rc<RefCell<Globals>>, name: &str) -> FnGen<'a> {
        FnGen {
            cfg,
            globals,
            name: name.to_owned(),
            instrs: Vec::new(),
            consts: Vec::new(),
            codes: Vec::new(),
            env: HashMap::new(),
            depth: 0,
        }
    }

    fn finish(self, arity: u16, rest: bool) -> Code {
        Code::build(self.name, arity, rest, self.instrs, self.consts, self.codes)
    }

    fn emit(&mut self, i: Instr, depth_delta: i32) {
        self.instrs.push(i);
        self.depth += depth_delta;
        debug_assert!(self.depth >= 0, "stack depth underflow in codegen");
    }

    fn konst(&mut self, v: Value) {
        let idx = u16::try_from(self.consts.len()).expect("constant pool overflow");
        self.consts.push(v);
        self.emit(Instr::Const(idx), 1);
    }

    fn global_id(&mut self, s: cm_sexpr::Sym) -> u32 {
        self.globals.borrow_mut().intern(s)
    }

    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.instrs.len() as u32;
        match &mut self.instrs[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Emits the context epilogue after a value-producing terminal.
    fn finish_value(&mut self, ctx: Ctx) {
        match ctx {
            Ctx::Tail(_) => self.emit(Instr::Return, -1),
            Ctx::WcmBody(Att::Present) => self.emit(Instr::PopAttach, 0),
            Ctx::EagerWcmBody => self.emit(Instr::EagerPopFrame, 0),
            _ => {}
        }
    }

    fn compile(&mut self, e: &Expr, ctx: Ctx) {
        match e {
            Expr::Quote(v) => {
                self.konst(*v);
                self.finish_value(ctx);
            }
            Expr::LocalRef(v) => {
                match self.env[v] {
                    Binding::Slot(i) => self.emit(Instr::LocalRef(i), 1),
                    Binding::Capture(i) => self.emit(Instr::CaptureRef(i), 1),
                }
                self.finish_value(ctx);
            }
            Expr::GlobalRef(s) => {
                let id = self.global_id(*s);
                self.emit(Instr::GlobalRef(id), 1);
                self.finish_value(ctx);
            }
            Expr::CurrentAttachments => {
                self.emit(Instr::CurrentAttachments, 1);
                self.finish_value(ctx);
            }
            Expr::If(t, c, a) => {
                self.compile(t, Ctx::NonTail);
                let j_else = self.here();
                self.emit(Instr::JumpIfFalse(0), -1);
                let depth0 = self.depth;
                self.compile(c, ctx);
                let j_end = if matches!(ctx, Ctx::Tail(_)) {
                    None
                } else {
                    let j = self.here();
                    self.emit(Instr::Jump(0), 0);
                    Some(j)
                };
                self.patch_jump(j_else);
                self.depth = depth0;
                self.compile(a, ctx);
                if let Some(j) = j_end {
                    // Both arms leave one value; keep the post-then depth.
                    self.patch_jump(j);
                }
            }
            Expr::Seq(es) => {
                let (last, init) = es.split_last().expect("Seq is nonempty");
                for x in init {
                    self.compile(x, Ctx::NonTail);
                    self.emit(Instr::Pop, -1);
                }
                self.compile(last, ctx);
            }
            Expr::Let { bindings, body } => {
                let n = bindings.len();
                for (v, init) in bindings {
                    let slot = u16::try_from(self.depth).expect("too many locals");
                    self.compile(init, Ctx::NonTail);
                    self.env.insert(*v, Binding::Slot(slot));
                }
                self.compile(body, ctx);
                if !matches!(ctx, Ctx::Tail(_)) && n > 0 {
                    self.emit(Instr::Leave(n as u16), -(n as i32));
                }
            }
            Expr::Lambda(l) => {
                self.compile_lambda(l);
                self.finish_value(ctx);
            }
            Expr::SetLocal(v, rhs) => {
                self.compile(rhs, Ctx::NonTail);
                match self.env[v] {
                    Binding::Slot(i) => self.emit(Instr::LocalSet(i), -1),
                    Binding::Capture(_) => {
                        unreachable!("assignment conversion leaves no captured set!")
                    }
                }
                self.konst(Value::Void);
                self.finish_value(ctx);
            }
            Expr::SetGlobal(s, rhs) => {
                self.compile(rhs, Ctx::NonTail);
                let id = self.global_id(*s);
                self.emit(Instr::GlobalSet(id), -1);
                self.konst(Value::Void);
                self.finish_value(ctx);
            }
            Expr::Call { rator, rands } => {
                self.compile(rator, Ctx::NonTail);
                for r in rands {
                    self.compile(r, Ctx::NonTail);
                }
                let n = rands.len() as u16;
                match ctx {
                    Ctx::Tail(_) => self.emit(Instr::TailCall(n), -(n as i32) - 1 + 1),
                    Ctx::NonTail | Ctx::WcmBody(Att::Absent) => {
                        self.emit(Instr::Call(n), -(n as i32) - 1 + 1)
                    }
                    Ctx::WcmBody(_) => {
                        // §7.2 case (b): the attachment pops via underflow
                        // when this call returns.
                        self.emit(Instr::CallWithAttachment(n), -(n as i32) - 1 + 1)
                    }
                    Ctx::EagerWcmBody => {
                        // Old-Racket model: callee shares the mark frame.
                        self.emit(Instr::EagerCallShared(n), -(n as i32) - 1 + 1)
                    }
                }
            }
            Expr::PrimApp { op, rands } => {
                let needs_generic_call =
                    matches!(ctx, Ctx::WcmBody(Att::Present)) && !self.cfg.prim_attachment_opt;
                if needs_generic_call {
                    // "no prim" ablation: the compiler may not assume the
                    // primitive leaves attachments alone, so it compiles a
                    // generic (reifying) call to the primitive's global.
                    let id = self.global_id(cm_sexpr::sym(op.name()));
                    self.emit(Instr::GlobalRef(id), 1);
                    for r in rands {
                        self.compile(r, Ctx::NonTail);
                    }
                    let n = rands.len() as u16;
                    self.emit(Instr::CallWithAttachment(n), -(n as i32) - 1 + 1);
                } else {
                    for r in rands {
                        self.compile(r, Ctx::NonTail);
                    }
                    let n = rands.len() as i32;
                    self.emit(Instr::PrimCall(*op, rands.len() as u8), -n + 1);
                    self.finish_value(ctx);
                }
            }
            Expr::Wcm { key, val, body } => self.compile_eager_wcm(key, val, body, ctx),
            Expr::SetAttachment { .. } | Expr::GetAttachment { .. } if ctx == Ctx::EagerWcmBody => {
                // Mixing raw attachment operations into an eager-model
                // mark body: evaluate as a plain value, then pop the
                // conceptual frame's entry.
                self.compile(e, Ctx::NonTail);
                self.emit(Instr::EagerPopFrame, 0);
            }
            Expr::SetAttachment { val, body } => {
                self.compile(val, Ctx::NonTail);
                match ctx {
                    Ctx::Tail(att) => {
                        // §7.2 case (a).
                        self.emit(
                            Instr::ReifySetAttach {
                                check_replace: att != Att::Absent,
                            },
                            -1,
                        );
                        self.compile(body, Ctx::Tail(Att::Present));
                    }
                    Ctx::NonTail => {
                        self.emit(Instr::PushAttach, -1);
                        self.compile(body, Ctx::WcmBody(Att::Present));
                    }
                    Ctx::WcmBody(att) => {
                        match att {
                            Att::Present => self.emit(Instr::SetAttach, -1),
                            _ => self.emit(Instr::PushAttach, -1),
                        }
                        self.compile(body, Ctx::WcmBody(Att::Present));
                    }
                    Ctx::EagerWcmBody => unreachable!("handled by the guard arm above"),
                }
            }
            Expr::GetAttachment {
                dflt,
                var,
                body,
                consume,
            } => self.compile_get_attachment(dflt, *var, body, *consume, ctx),
        }
    }

    fn compile_get_attachment(
        &mut self,
        dflt: &Expr,
        var: VarId,
        body: &Expr,
        consume: bool,
        ctx: Ctx,
    ) {
        // Decide how the attachment value is obtained.
        let att = match ctx {
            Ctx::Tail(a) => a,
            Ctx::NonTail | Ctx::EagerWcmBody => Att::Absent,
            Ctx::WcmBody(a) => a,
        };
        let slot = u16::try_from(self.depth).expect("too many locals");
        match att {
            Att::Dynamic => {
                self.compile(dflt, Ctx::NonTail);
                self.emit(
                    if consume {
                        Instr::ConsumeAttachDyn
                    } else {
                        Instr::GetAttachDyn
                    },
                    0,
                );
            }
            Att::Present => {
                // The default is dead; evaluate it only for effect.
                if !dflt.is_pure() {
                    self.compile(dflt, Ctx::NonTail);
                    self.emit(Instr::Pop, -1);
                }
                self.emit(
                    if consume {
                        Instr::ConsumeAttachPresent
                    } else {
                        Instr::GetAttachPresent
                    },
                    1,
                );
            }
            Att::Absent => {
                self.compile(dflt, Ctx::NonTail);
            }
        }
        self.env.insert(var, Binding::Slot(slot));
        // Attachment knowledge for the body.
        let body_att = match att {
            Att::Dynamic => {
                if consume {
                    Att::Absent
                } else {
                    Att::Dynamic
                }
            }
            Att::Present => {
                if consume {
                    Att::Absent
                } else {
                    Att::Present
                }
            }
            Att::Absent => Att::Absent,
        };
        let body_ctx = match ctx {
            Ctx::Tail(_) => Ctx::Tail(body_att),
            Ctx::NonTail | Ctx::EagerWcmBody => Ctx::NonTail,
            Ctx::WcmBody(_) => Ctx::WcmBody(body_att),
        };
        self.compile(body, body_ctx);
        if !matches!(ctx, Ctx::Tail(_)) {
            self.emit(Instr::Leave(1), -1);
        }
    }

    /// `with-continuation-mark` in the eager (old Racket) model: write
    /// into the current mark-stack entry; non-tail uses get a conceptual
    /// frame entry of their own.
    fn compile_eager_wcm(&mut self, key: &Expr, val: &Expr, body: &Expr, ctx: Ctx) {
        debug_assert!(
            self.cfg.eager_marks(),
            "Wcm nodes reach codegen only in the eager model"
        );
        match ctx {
            Ctx::Tail(att) => {
                self.compile(key, Ctx::NonTail);
                self.compile(val, Ctx::NonTail);
                self.emit(Instr::EagerMarkSet, -2);
                self.compile(body, Ctx::Tail(att));
            }
            Ctx::EagerWcmBody => {
                // Nested mark in tail position of an eager mark body:
                // same conceptual frame, so write into the existing entry.
                self.compile(key, Ctx::NonTail);
                self.compile(val, Ctx::NonTail);
                self.emit(Instr::EagerMarkSet, -2);
                self.compile(body, Ctx::EagerWcmBody);
            }
            Ctx::NonTail | Ctx::WcmBody(_) => {
                self.emit(Instr::EagerPushFrame, 0);
                self.compile(key, Ctx::NonTail);
                self.compile(val, Ctx::NonTail);
                self.emit(Instr::EagerMarkSet, -2);
                self.compile(body, Ctx::EagerWcmBody);
                // The body's exits popped the entry; apply any outer
                // attachment epilogue.
                self.finish_value(ctx);
            }
        }
    }

    fn compile_lambda(&mut self, l: &Rc<LambdaExpr>) {
        let frees = free_vars(l);
        for v in &frees {
            match self.env[v] {
                Binding::Slot(i) => self.emit(Instr::LocalRef(i), 1),
                Binding::Capture(i) => self.emit(Instr::CaptureRef(i), 1),
            }
        }
        let mut child = FnGen::new(self.cfg, self.globals, &l.name);
        for (i, p) in l.params.iter().enumerate() {
            child.env.insert(*p, Binding::Slot(i as u16));
        }
        let mut arity = l.params.len();
        if let Some(r) = l.rest {
            child.env.insert(r, Binding::Slot(arity as u16));
            arity += 1;
        }
        child.depth = arity as i32;
        for (i, v) in frees.iter().enumerate() {
            child.env.insert(*v, Binding::Capture(i as u16));
        }
        child.compile(&l.body, Ctx::Tail(Att::Dynamic));
        let code = Rc::new(child.finish(l.params.len() as u16, l.rest.is_some()));
        let code_idx = u16::try_from(self.codes.len()).expect("too many child codes");
        self.codes.push(code);
        let n = frees.len() as i32;
        self.emit(
            Instr::MakeClosure {
                code: code_idx,
                captures: frees.len() as u16,
            },
            -n + 1,
        );
    }
}

/// The free variables of a lambda, in first-use order.
fn free_vars(l: &LambdaExpr) -> Vec<VarId> {
    let mut bound: HashSet<VarId> = l.params.iter().copied().collect();
    bound.extend(l.rest);
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    collect_free(&l.body, &mut bound, &mut seen, &mut out);
    out
}

fn collect_free(
    e: &Expr,
    bound: &mut HashSet<VarId>,
    seen: &mut HashSet<VarId>,
    out: &mut Vec<VarId>,
) {
    match e {
        Expr::LocalRef(v) => {
            if !bound.contains(v) && seen.insert(*v) {
                out.push(*v);
            }
        }
        Expr::SetLocal(v, rhs) => {
            if !bound.contains(v) && seen.insert(*v) {
                out.push(*v);
            }
            collect_free(rhs, bound, seen, out);
        }
        Expr::Quote(_) | Expr::GlobalRef(_) | Expr::CurrentAttachments => {}
        Expr::If(a, b, c) => {
            collect_free(a, bound, seen, out);
            collect_free(b, bound, seen, out);
            collect_free(c, bound, seen, out);
        }
        Expr::Seq(es) => es.iter().for_each(|x| collect_free(x, bound, seen, out)),
        Expr::Let { bindings, body } => {
            for (_, init) in bindings {
                collect_free(init, bound, seen, out);
            }
            let added: Vec<VarId> = bindings
                .iter()
                .map(|(v, _)| *v)
                .filter(|v| bound.insert(*v))
                .collect();
            collect_free(body, bound, seen, out);
            for v in added {
                bound.remove(&v);
            }
        }
        Expr::Lambda(l) => {
            let added: Vec<VarId> = l
                .params
                .iter()
                .copied()
                .chain(l.rest)
                .filter(|v| bound.insert(*v))
                .collect();
            collect_free(&l.body, bound, seen, out);
            for v in added {
                bound.remove(&v);
            }
        }
        Expr::SetGlobal(_, rhs) => collect_free(rhs, bound, seen, out),
        Expr::Call { rator, rands } => {
            collect_free(rator, bound, seen, out);
            rands.iter().for_each(|x| collect_free(x, bound, seen, out));
        }
        Expr::PrimApp { rands, .. } => rands.iter().for_each(|x| collect_free(x, bound, seen, out)),
        Expr::Wcm { key, val, body } => {
            collect_free(key, bound, seen, out);
            collect_free(val, bound, seen, out);
            collect_free(body, bound, seen, out);
        }
        Expr::SetAttachment { val, body } => {
            collect_free(val, bound, seen, out);
            collect_free(body, bound, seen, out);
        }
        Expr::GetAttachment {
            dflt, var, body, ..
        } => {
            collect_free(dflt, bound, seen, out);
            let added = bound.insert(*var);
            collect_free(body, bound, seen, out);
            if added {
                bound.remove(var);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TopForm;
    use cm_sexpr::parse_str;

    fn gen(src: &str, cfg: &CompilerConfig) -> Rc<Code> {
        let data = parse_str(src).unwrap();
        let mut ex = crate::expand::Expander::new();
        let forms = ex.expand_program(&data).unwrap();
        let user = crate::cp0::user_defined_names(&forms);
        let mut vars = crate::lower::VarSupply::starting_at(100_000);
        let forms: Vec<TopForm> = forms
            .into_iter()
            .map(|f| match f {
                TopForm::Define(n, e) => TopForm::Define(
                    n,
                    crate::lower::lower(
                        crate::cp0::optimize(
                            crate::cp0::recognize_prims(e, &user),
                            &crate::cp0::Cp0Options::default(),
                        ),
                        cfg,
                        &mut vars,
                    ),
                ),
                TopForm::Expr(e) => TopForm::Expr(crate::lower::lower(
                    crate::cp0::optimize(
                        crate::cp0::recognize_prims(e, &user),
                        &crate::cp0::Cp0Options::default(),
                    ),
                    cfg,
                    &mut vars,
                )),
            })
            .collect();
        let globals = Rc::new(RefCell::new(Globals::new()));
        gen_program(&forms, &globals, cfg)
    }

    fn instrs_of(code: &Code) -> String {
        code.disassemble()
    }

    #[test]
    fn tail_wcm_uses_reify_set() {
        let code = gen(
            "(define (f) (with-continuation-mark 'k 1 (g)))",
            &CompilerConfig::default(),
        );
        let d = instrs_of(&code);
        assert!(d.contains("reify-set-attach"), "{d}");
        // The consume/set fusion: the set skips the replace check.
        assert!(d.contains("check-replace=false"), "{d}");
        assert!(d.contains("tail-call"), "{d}");
    }

    #[test]
    fn nontail_wcm_with_tail_call_uses_call_with_attachment() {
        let code = gen(
            "(define (f) (+ 1 (with-continuation-mark 'k 1 (g))))",
            &CompilerConfig::default(),
        );
        let d = instrs_of(&code);
        assert!(d.contains("call/attach"), "{d}");
        assert!(d.contains("push-attach"), "{d}");
    }

    #[test]
    fn nontail_wcm_over_prim_body_uses_direct_push_pop() {
        // §7.2's third category: no reification at all.
        let code = gen(
            "(define (f x) (+ 1 (with-continuation-mark 'k 1 (+ x 2))))",
            &CompilerConfig::default(),
        );
        let d = instrs_of(&code);
        assert!(d.contains("push-attach"), "{d}");
        assert!(d.contains("pop-attach"), "{d}");
        assert!(!d.contains("call/attach"), "{d}");
        assert!(!d.contains("reify-set-attach"), "{d}");
    }

    #[test]
    fn no_prim_ablation_reifies_around_prims() {
        let cfg = CompilerConfig {
            prim_attachment_opt: false,
            ..CompilerConfig::default()
        };
        let code = gen(
            "(define (f x) (+ 1 (with-continuation-mark 'k 1 (+ x 2))))",
            &cfg,
        );
        let d = instrs_of(&code);
        assert!(d.contains("call/attach"), "{d}");
    }

    #[test]
    fn no_opt_ablation_compiles_plain_calls() {
        let cfg = CompilerConfig {
            attachment_opt: false,
            ..CompilerConfig::default()
        };
        let code = gen("(define (f) (with-continuation-mark 'k 1 (g)))", &cfg);
        let d = instrs_of(&code);
        assert!(!d.contains("reify-set-attach"), "{d}");
        assert!(!d.contains("push-attach"), "{d}");
        assert!(d.contains("make-closure"), "{d}");
    }

    #[test]
    fn eager_model_emits_mark_stack_instrs() {
        let cfg = CompilerConfig {
            mark_model: cm_vm::MarkModel::EagerMarkStack,
            ..CompilerConfig::default()
        };
        let code = gen("(define (f) (with-continuation-mark 'k 1 (g)))", &cfg);
        let d = instrs_of(&code);
        assert!(d.contains("eager-mark-set"), "{d}");
        assert!(!d.contains("reify-set-attach"), "{d}");
        let code = gen("(define (f) (+ 1 (with-continuation-mark 'k 1 (g))))", &cfg);
        let d = instrs_of(&code);
        assert!(d.contains("eager-push-frame"), "{d}");
        // The tail call in the body shares the conceptual frame's entry.
        assert!(d.contains("eager-call-shared"), "{d}");
        // A non-call body pops the entry explicitly.
        let code = gen(
            "(define (f x) (+ 1 (with-continuation-mark 'k 1 (+ x 1))))",
            &cfg,
        );
        let d = instrs_of(&code);
        assert!(d.contains("eager-pop-frame"), "{d}");
    }

    #[test]
    fn closures_capture_free_variables() {
        let code = gen(
            "(define (f x) (lambda (y) (+ x y)))",
            &CompilerConfig::default(),
        );
        let d = instrs_of(&code);
        assert!(d.contains("make-closure code=0 captures=1"), "{d}");
        assert!(d.contains("capture-ref"), "{d}");
    }

    #[test]
    fn tail_calls_are_tail_calls() {
        let code = gen(
            "(define (loop i) (loop (+ i 1)))",
            &CompilerConfig::default(),
        );
        let d = instrs_of(&code);
        assert!(d.contains("tail-call"), "{d}");
    }

    #[test]
    fn let_compiles_with_leave() {
        let code = gen(
            "(define (f) (car (let ([x (g)]) (cons x x))))",
            &CompilerConfig::default(),
        );
        let d = instrs_of(&code);
        assert!(d.contains("leave"), "{d}");
    }
}
