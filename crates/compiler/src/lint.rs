//! The §7.4 frame-observability lint.
//!
//! cp0 must not collapse a conceptual continuation frame that an
//! attachment operation could observe: rewriting `(let ([x E]) x)` to `E`
//! moves `E` from non-tail position (its own frame, its own attachment
//! slot) into tail position (sharing the caller's frame), which is
//! observable whenever `E` is not *attachment-transparent* — the paper's
//! §7.4 counterexample. [`Cp0Options::attachment_restriction`] guards the
//! rewrite; this lint independently checks the guard by diffing
//! *frame-observability profiles* of an expression before and after
//! `cp0::optimize`.
//!
//! A profile records, for every non-attachment-transparent subexpression,
//! whether it occurs in tail position (sharing the enclosing function
//! frame) or only in non-tail positions (inside its own conceptual
//! frame). A [`finding`](Finding) is reported when an expression that
//! occurred *only* in non-tail positions before optimization shows up in
//! tail position afterwards: some rewrite erased a frame the expression
//! could observe. Under the default configuration (restriction on) the
//! lint stays silent; with the restriction off (the "unmod" Chez variant)
//! it fires on the counterexample — which the test suite pins down.
//!
//! [`Cp0Options::attachment_restriction`]: crate::cp0::Cp0Options

use std::collections::HashMap;

use crate::ast::Expr;

/// Where fingerprints were seen: in tail position, non-tail, or both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Positions {
    tail: bool,
    nontail: bool,
}

/// A frame-observability profile: every non-attachment-transparent
/// subexpression, keyed by structural fingerprint, with the positions it
/// occupies.
#[derive(Debug, Default)]
pub struct FrameProfile {
    seen: HashMap<String, Positions>,
}

/// One §7.4 violation: a frame-observing expression whose conceptual
/// frame was collapsed away by cp0.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Structural rendering of the offending expression.
    pub expr: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "§7.4 frame collapse: non-attachment-transparent expression moved \
             from non-tail to tail position by cp0: {}",
            self.expr
        )
    }
}

/// Computes the frame-observability profile of `e`, treated as a whole
/// program/definition body (tail position).
pub fn frame_profile(e: &Expr) -> FrameProfile {
    let mut p = FrameProfile::default();
    collect(e, true, &mut p);
    p
}

/// Diffs two profiles; see the module docs for the fired condition.
pub fn diff(before: &FrameProfile, after: &FrameProfile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (fp, pos_after) in &after.seen {
        if !pos_after.tail {
            continue;
        }
        if let Some(pos_before) = before.seen.get(fp) {
            if pos_before.nontail && !pos_before.tail {
                findings.push(Finding { expr: fp.clone() });
            }
        }
    }
    findings.sort_by(|a, b| a.expr.cmp(&b.expr));
    findings
}

fn record(e: &Expr, tail: bool, p: &mut FrameProfile) {
    let pos = p.seen.entry(format!("{e:?}")).or_default();
    if tail {
        pos.tail = true;
    } else {
        pos.nontail = true;
    }
}

/// Walks `e`, recording each non-transparent node with its position.
///
/// Position rules mirror the §7.2 categorization: bodies of `let`/`seq`/
/// `if` arms inherit the position; operands, bindings, tests, keys, and
/// values are non-tail; a lambda body restarts in tail position; the body
/// of a *tail* mark operation shares the frame (tail), while the body of
/// a *non-tail* one lives in the fresh conceptual frame (non-tail).
fn collect(e: &Expr, tail: bool, p: &mut FrameProfile) {
    if !e.attachment_transparent() {
        record(e, tail, p);
    }
    match e {
        Expr::Quote(_) | Expr::LocalRef(_) | Expr::GlobalRef(_) | Expr::CurrentAttachments => {}
        Expr::If(t, c, a) => {
            collect(t, false, p);
            collect(c, tail, p);
            collect(a, tail, p);
        }
        Expr::Seq(es) => {
            if let Some((last, init)) = es.split_last() {
                for x in init {
                    collect(x, false, p);
                }
                collect(last, tail, p);
            }
        }
        Expr::Let { bindings, body } => {
            for (_, init) in bindings {
                collect(init, false, p);
            }
            collect(body, tail, p);
        }
        Expr::Lambda(l) => collect(&l.body, true, p),
        Expr::SetLocal(_, x) | Expr::SetGlobal(_, x) => collect(x, false, p),
        Expr::Call { rator, rands } => {
            collect(rator, false, p);
            for x in rands {
                collect(x, false, p);
            }
        }
        Expr::PrimApp { rands, .. } => {
            for x in rands {
                collect(x, false, p);
            }
        }
        Expr::Wcm { key, val, body } => {
            collect(key, false, p);
            collect(val, false, p);
            collect(body, tail, p);
        }
        Expr::SetAttachment { val, body } => {
            collect(val, false, p);
            collect(body, tail, p);
        }
        Expr::GetAttachment { dflt, body, .. } => {
            collect(dflt, false, p);
            collect(body, tail, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_vm::Value;

    fn wcm_example() -> Expr {
        // (with-continuation-mark 'k 'v (work))
        Expr::Wcm {
            key: Box::new(Expr::Quote(Value::fixnum(1))),
            val: Box::new(Expr::Quote(Value::fixnum(2))),
            body: Box::new(Expr::Call {
                rator: Box::new(Expr::GlobalRef(cm_sexpr::sym("work"))),
                rands: vec![],
            }),
        }
    }

    #[test]
    fn collapse_of_nontail_wcm_is_flagged() {
        // (let ([v (wcm ...)]) v)  ==cp0==>  (wcm ...)
        let before = Expr::Let {
            bindings: vec![(7, wcm_example())],
            body: Box::new(Expr::LocalRef(7)),
        };
        let after = wcm_example();
        // Both the wcm and the call inside its body lose their frame.
        let findings = diff(&frame_profile(&before), &frame_profile(&after));
        assert!(!findings.is_empty(), "{findings:?}");
        assert!(findings.iter().any(|f| f.expr.contains("Wcm")));
        assert!(findings[0].to_string().contains("§7.4"));
    }

    #[test]
    fn unchanged_program_is_silent() {
        let e = Expr::Let {
            bindings: vec![(7, wcm_example())],
            body: Box::new(Expr::LocalRef(7)),
        };
        assert!(diff(&frame_profile(&e), &frame_profile(&e)).is_empty());
    }

    #[test]
    fn tail_to_tail_rewrite_is_silent() {
        // (begin 1 (wcm ...)) => (wcm ...) keeps the wcm in tail position.
        let before = Expr::Seq(vec![Expr::Quote(Value::fixnum(1)), wcm_example()]);
        let after = wcm_example();
        assert!(diff(&frame_profile(&before), &frame_profile(&after)).is_empty());
    }
}
