//! Lowering passes that run between cp0 and codegen:
//!
//! 1. **Attachment recognition** (§7.1–§7.2): calls to
//!    `call-setting/-getting/-consuming-continuation-attachment` with an
//!    *immediate lambda* become dedicated AST nodes the code generator can
//!    categorize by position; other uses stay ordinary calls (handled by
//!    the uniform control natives). `current-continuation-attachments` in
//!    operator-less reference position also stays a call.
//! 2. **`with-continuation-mark` lowering**: into the paper's
//!    consume-then-set attachment expansion (attachments model), into
//!    uniform native calls (when the recognition optimization is
//!    disabled — the "no opt" variant), or left for codegen (eager
//!    mark-stack model, where the instruction set differs).
//! 3. **Assignment conversion**: mutated locals are boxed so closures can
//!    share them.

use std::collections::HashSet;

use cm_sexpr::sym;
use cm_vm::{PrimOp, Value};

use crate::ast::{Expr, LambdaExpr, VarId};
use crate::CompilerConfig;

/// A monotone counter for fresh [`VarId`]s, threaded through the passes.
#[derive(Debug)]
pub struct VarSupply {
    next: VarId,
}

impl VarSupply {
    /// Starts allocating above every id the expander produced.
    pub fn starting_at(next: VarId) -> VarSupply {
        VarSupply { next }
    }

    /// A fresh variable id.
    pub fn fresh(&mut self) -> VarId {
        let v = self.next;
        self.next += 1;
        v
    }
}

/// Runs all lowering passes.
pub fn lower(e: Expr, cfg: &CompilerConfig, vars: &mut VarSupply) -> Expr {
    let e = if cfg.attachment_opt {
        recognize_attachment_ops(e)
    } else {
        e
    };
    let e = lower_wcm(e, cfg, vars);
    convert_assignments(e, vars)
}

// ----------------------------------------------------------------------
// Attachment-primitive recognition
// ----------------------------------------------------------------------

fn recognize_attachment_ops(e: Expr) -> Expr {
    map(e, &mut |e| {
        let Expr::Call { rator, rands } = e else {
            return e;
        };
        let Expr::GlobalRef(s) = *rator else {
            return Expr::Call { rator, rands };
        };
        match s.name() {
            "call-setting-continuation-attachment" if rands.len() == 2 => {
                if let [val, Expr::Lambda(l)] = &rands[..] {
                    if l.params.is_empty() && l.rest.is_none() {
                        return Expr::SetAttachment {
                            val: Box::new(val.clone()),
                            body: Box::new(l.body.clone()),
                        };
                    }
                }
            }
            "call-getting-continuation-attachment" | "call-consuming-continuation-attachment"
                if rands.len() == 2 =>
            {
                if let [dflt, Expr::Lambda(l)] = &rands[..] {
                    if l.params.len() == 1 && l.rest.is_none() {
                        return Expr::GetAttachment {
                            dflt: Box::new(dflt.clone()),
                            var: l.params[0],
                            body: Box::new(l.body.clone()),
                            consume: s.name() == "call-consuming-continuation-attachment",
                        };
                    }
                }
            }
            "current-continuation-attachments" if rands.is_empty() => {
                return Expr::CurrentAttachments;
            }
            _ => {}
        }
        Expr::Call {
            rator: Box::new(Expr::GlobalRef(s)),
            rands,
        }
    })
}

// ----------------------------------------------------------------------
// with-continuation-mark lowering
// ----------------------------------------------------------------------

fn lower_wcm(e: Expr, cfg: &CompilerConfig, vars: &mut VarSupply) -> Expr {
    map(e, &mut |e| {
        let Expr::Wcm { key, val, body } = e else {
            return e;
        };
        if cfg.eager_marks() {
            // Codegen handles Wcm directly in the eager model.
            return Expr::Wcm { key, val, body };
        }
        // The §7.1 expansion:
        //   (call-consuming-continuation-attachment #f
        //     (lambda (dict)
        //       (call-setting-continuation-attachment
        //         ($wcm-merge dict key val)
        //         (lambda () body))))
        let dict = vars.fresh();
        let merged = Expr::Call {
            rator: Box::new(Expr::GlobalRef(sym("$wcm-merge"))),
            rands: vec![Expr::LocalRef(dict), *key, *val],
        };
        if cfg.attachment_opt {
            Expr::GetAttachment {
                dflt: Box::new(Expr::Quote(Value::Bool(false))),
                var: dict,
                body: Box::new(Expr::SetAttachment {
                    val: Box::new(merged),
                    body,
                }),
                consume: true,
            }
        } else {
            // Uniform expansion through the control natives, with real
            // closure allocation — the unoptimized `call/cm` path.
            let inner_thunk = Expr::Lambda(std::rc::Rc::new(LambdaExpr {
                name: "$wcm-body".into(),
                params: vec![],
                rest: None,
                body: *body,
            }));
            let setter = Expr::Call {
                rator: Box::new(Expr::GlobalRef(sym("$call-setting-attachment"))),
                rands: vec![merged, inner_thunk],
            };
            let receiver = Expr::Lambda(std::rc::Rc::new(LambdaExpr {
                name: "$wcm-consume".into(),
                params: vec![dict],
                rest: None,
                body: setter,
            }));
            Expr::Call {
                rator: Box::new(Expr::GlobalRef(sym("$call-consuming-attachment"))),
                rands: vec![Expr::Quote(Value::Bool(false)), receiver],
            }
        }
    })
}

// ----------------------------------------------------------------------
// Assignment conversion
// ----------------------------------------------------------------------

fn convert_assignments(e: Expr, vars: &mut VarSupply) -> Expr {
    let mut mutated: HashSet<VarId> = HashSet::new();
    e.walk(&mut |x| {
        if let Expr::SetLocal(v, _) = x {
            mutated.insert(*v);
        }
    });
    if mutated.is_empty() {
        return e;
    }
    convert(e, &mutated, vars)
}

fn convert(e: Expr, boxed: &HashSet<VarId>, vars: &mut VarSupply) -> Expr {
    match e {
        Expr::LocalRef(v) if boxed.contains(&v) => Expr::PrimApp {
            op: PrimOp::Unbox,
            rands: vec![Expr::LocalRef(v)],
        },
        Expr::SetLocal(v, rhs) => {
            debug_assert!(boxed.contains(&v));
            Expr::PrimApp {
                op: PrimOp::SetBox,
                rands: vec![Expr::LocalRef(v), convert(*rhs, boxed, vars)],
            }
        }
        Expr::Let { bindings, body } => Expr::Let {
            bindings: bindings
                .into_iter()
                .map(|(v, init)| {
                    let init = convert(init, boxed, vars);
                    if boxed.contains(&v) {
                        (
                            v,
                            Expr::PrimApp {
                                op: PrimOp::BoxNew,
                                rands: vec![init],
                            },
                        )
                    } else {
                        (v, init)
                    }
                })
                .collect(),
            body: Box::new(convert(*body, boxed, vars)),
        },
        Expr::Lambda(l) => {
            let l = (*l).clone();
            let mut body = convert(l.body, boxed, vars);
            let mut params = Vec::with_capacity(l.params.len());
            let mut rebinds: Vec<(VarId, Expr)> = Vec::new();
            for p in l.params {
                if boxed.contains(&p) {
                    let fresh = vars.fresh();
                    params.push(fresh);
                    rebinds.push((
                        p,
                        Expr::PrimApp {
                            op: PrimOp::BoxNew,
                            rands: vec![Expr::LocalRef(fresh)],
                        },
                    ));
                } else {
                    params.push(p);
                }
            }
            let rest = l.rest.map(|r| {
                if boxed.contains(&r) {
                    let fresh = vars.fresh();
                    rebinds.push((
                        r,
                        Expr::PrimApp {
                            op: PrimOp::BoxNew,
                            rands: vec![Expr::LocalRef(fresh)],
                        },
                    ));
                    fresh
                } else {
                    r
                }
            });
            if !rebinds.is_empty() {
                body = Expr::Let {
                    bindings: rebinds,
                    body: Box::new(body),
                };
            }
            Expr::Lambda(std::rc::Rc::new(LambdaExpr {
                name: l.name,
                params,
                rest,
                body,
            }))
        }
        Expr::GetAttachment {
            dflt,
            var,
            body,
            consume,
        } => {
            let dflt = Box::new(convert(*dflt, boxed, vars));
            let body = convert(*body, boxed, vars);
            if boxed.contains(&var) {
                let fresh = vars.fresh();
                Expr::GetAttachment {
                    dflt,
                    var: fresh,
                    body: Box::new(Expr::Let {
                        bindings: vec![(
                            var,
                            Expr::PrimApp {
                                op: PrimOp::BoxNew,
                                rands: vec![Expr::LocalRef(fresh)],
                            },
                        )],
                        body: Box::new(body),
                    }),
                    consume,
                }
            } else {
                Expr::GetAttachment {
                    dflt,
                    var,
                    body: Box::new(body),
                    consume,
                }
            }
        }
        // Structural recursion for everything else.
        Expr::If(t, c, a) => Expr::If(
            Box::new(convert(*t, boxed, vars)),
            Box::new(convert(*c, boxed, vars)),
            Box::new(convert(*a, boxed, vars)),
        ),
        Expr::Seq(es) => Expr::Seq(es.into_iter().map(|x| convert(x, boxed, vars)).collect()),
        Expr::SetGlobal(s, x) => Expr::SetGlobal(s, Box::new(convert(*x, boxed, vars))),
        Expr::Call { rator, rands } => Expr::Call {
            rator: Box::new(convert(*rator, boxed, vars)),
            rands: rands.into_iter().map(|x| convert(x, boxed, vars)).collect(),
        },
        Expr::PrimApp { op, rands } => Expr::PrimApp {
            op,
            rands: rands.into_iter().map(|x| convert(x, boxed, vars)).collect(),
        },
        Expr::Wcm { key, val, body } => Expr::Wcm {
            key: Box::new(convert(*key, boxed, vars)),
            val: Box::new(convert(*val, boxed, vars)),
            body: Box::new(convert(*body, boxed, vars)),
        },
        Expr::SetAttachment { val, body } => Expr::SetAttachment {
            val: Box::new(convert(*val, boxed, vars)),
            body: Box::new(convert(*body, boxed, vars)),
        },
        leaf => leaf,
    }
}

/// Bottom-up map, shared with cp0 style passes (duplicated locally to
/// avoid a public helper in the AST).
fn map(e: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let e = match e {
        Expr::If(t, c, a) => Expr::If(
            Box::new(map(*t, f)),
            Box::new(map(*c, f)),
            Box::new(map(*a, f)),
        ),
        Expr::Seq(es) => Expr::Seq(es.into_iter().map(|x| map(x, f)).collect()),
        Expr::Let { bindings, body } => Expr::Let {
            bindings: bindings.into_iter().map(|(v, x)| (v, map(x, f))).collect(),
            body: Box::new(map(*body, f)),
        },
        Expr::Lambda(l) => {
            let l = (*l).clone();
            Expr::Lambda(std::rc::Rc::new(LambdaExpr {
                body: map(l.body, f),
                ..l
            }))
        }
        Expr::SetLocal(v, x) => Expr::SetLocal(v, Box::new(map(*x, f))),
        Expr::SetGlobal(s, x) => Expr::SetGlobal(s, Box::new(map(*x, f))),
        Expr::Call { rator, rands } => Expr::Call {
            rator: Box::new(map(*rator, f)),
            rands: rands.into_iter().map(|x| map(x, f)).collect(),
        },
        Expr::PrimApp { op, rands } => Expr::PrimApp {
            op,
            rands: rands.into_iter().map(|x| map(x, f)).collect(),
        },
        Expr::Wcm { key, val, body } => Expr::Wcm {
            key: Box::new(map(*key, f)),
            val: Box::new(map(*val, f)),
            body: Box::new(map(*body, f)),
        },
        Expr::SetAttachment { val, body } => Expr::SetAttachment {
            val: Box::new(map(*val, f)),
            body: Box::new(map(*body, f)),
        },
        Expr::GetAttachment {
            dflt,
            var,
            body,
            consume,
        } => Expr::GetAttachment {
            dflt: Box::new(map(*dflt, f)),
            var,
            body: Box::new(map(*body, f)),
            consume,
        },
        leaf => leaf,
    };
    f(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TopForm;
    use cm_sexpr::parse_str;

    fn lower_src(src: &str, cfg: &CompilerConfig) -> Expr {
        let data = parse_str(src).unwrap();
        let mut ex = crate::expand::Expander::new();
        let forms = ex.expand_program(&data).unwrap();
        let TopForm::Expr(e) = forms.into_iter().last().unwrap() else {
            panic!("expected expression")
        };
        let mut vars = VarSupply::starting_at(10_000);
        lower(e, cfg, &mut vars)
    }

    #[test]
    fn recognizes_setting_with_immediate_lambda() {
        let e = lower_src(
            "(call-setting-continuation-attachment 1 (lambda () (f)))",
            &CompilerConfig::default(),
        );
        assert!(matches!(e, Expr::SetAttachment { .. }), "{e:?}");
    }

    #[test]
    fn recognizes_getting_and_consuming() {
        let e = lower_src(
            "(call-getting-continuation-attachment 0 (lambda (x) x))",
            &CompilerConfig::default(),
        );
        let Expr::GetAttachment { consume, .. } = e else {
            panic!()
        };
        assert!(!consume);
        let e = lower_src(
            "(call-consuming-continuation-attachment 0 (lambda (x) x))",
            &CompilerConfig::default(),
        );
        assert!(matches!(e, Expr::GetAttachment { consume: true, .. }));
    }

    #[test]
    fn non_immediate_lambda_stays_a_call() {
        // Paper footnote 5: only immediate-lambda uses are specialized.
        let e = lower_src(
            "(call-setting-continuation-attachment 1 thunk)",
            &CompilerConfig::default(),
        );
        assert!(matches!(e, Expr::Call { .. }), "{e:?}");
    }

    #[test]
    fn no_opt_leaves_calls_and_expands_wcm_uniformly() {
        let cfg = CompilerConfig {
            attachment_opt: false,
            ..CompilerConfig::default()
        };
        let e = lower_src(
            "(call-setting-continuation-attachment 1 (lambda () (f)))",
            &cfg,
        );
        assert!(matches!(e, Expr::Call { .. }), "{e:?}");
        let e = lower_src("(with-continuation-mark 'k 1 (f))", &cfg);
        // Uniform expansion: a call to $call-consuming-attachment.
        let Expr::Call { rator, .. } = &e else {
            panic!("{e:?}")
        };
        assert!(matches!(&**rator, Expr::GlobalRef(s) if s.name() == "$call-consuming-attachment"));
    }

    #[test]
    fn wcm_lowers_to_consume_then_set() {
        let e = lower_src(
            "(with-continuation-mark 'k 1 (f))",
            &CompilerConfig::default(),
        );
        let Expr::GetAttachment { consume, body, .. } = e else {
            panic!("expected consume/set expansion")
        };
        assert!(consume);
        assert!(matches!(*body, Expr::SetAttachment { .. }));
    }

    #[test]
    fn eager_model_keeps_wcm_node() {
        let cfg = CompilerConfig {
            mark_model: cm_vm::MarkModel::EagerMarkStack,
            ..CompilerConfig::default()
        };
        let e = lower_src("(with-continuation-mark 'k 1 (f))", &cfg);
        assert!(matches!(e, Expr::Wcm { .. }));
    }

    #[test]
    fn assignment_conversion_boxes_mutated_locals() {
        let e = lower_src("(let ([x 0]) (set! x 1) x)", &CompilerConfig::default());
        // The binding becomes (box 0), the ref becomes (unbox x).
        let Expr::Let { bindings, body } = &e else {
            panic!("{e:?}")
        };
        assert!(matches!(
            bindings[0].1,
            Expr::PrimApp {
                op: PrimOp::BoxNew,
                ..
            }
        ));
        let Expr::Seq(es) = &**body else {
            panic!("{e:?}")
        };
        assert!(matches!(
            es.last().unwrap(),
            Expr::PrimApp {
                op: PrimOp::Unbox,
                ..
            }
        ));
    }

    #[test]
    fn mutated_params_are_reboxed() {
        let e = lower_src("(lambda (x) (set! x 1) x)", &CompilerConfig::default());
        let Expr::Lambda(l) = &e else { panic!() };
        assert!(matches!(&l.body, Expr::Let { .. }));
    }

    #[test]
    fn unmutated_code_is_untouched() {
        let e = lower_src("(lambda (x) x)", &CompilerConfig::default());
        let Expr::Lambda(l) = &e else { panic!() };
        assert!(matches!(l.body, Expr::LocalRef(_)));
    }
}
