//! The source-level optimizer, modeled on Chez Scheme's cp0: constant
//! folding, beta reduction, copy propagation, dead-code elimination —
//! plus the §7.4 *attachment restriction*: a simplification that would
//! move an expression from non-tail to tail position (collapsing a
//! conceptual continuation frame) is allowed only when the expression is
//! attachment-transparent. Disabling the restriction reproduces the
//! paper's "unmodified" Chez variant (§8.2).
//!
//! Also implements the §7.3 high-level mark elision: a
//! `with-continuation-mark` whose body cannot observe marks compiles to
//! just its body.

use std::collections::{HashMap, HashSet};

use cm_sexpr::Sym;
use cm_vm::{PrimOp, Value};

use crate::ast::{prim_is_foldable, Expr, LambdaExpr, TopForm, VarId};

/// Options for the optimizer.
#[derive(Debug, Clone, Copy)]
pub struct Cp0Options {
    /// Honor the §7.4 restriction (the "attach"/"all mods" variants). When
    /// `false`, simplifications may collapse observable continuation
    /// frames (the "unmod" variant).
    pub attachment_restriction: bool,
    /// Apply the §7.3 high-level elision of irrelevant marks.
    pub elide_irrelevant_marks: bool,
}

impl Default for Cp0Options {
    fn default() -> Cp0Options {
        Cp0Options {
            attachment_restriction: true,
            elide_irrelevant_marks: true,
        }
    }
}

/// Names (re)defined by the user program; their global references must not
/// be treated as known primitives.
pub fn user_defined_names(forms: &[TopForm]) -> HashSet<Sym> {
    let mut out = HashSet::new();
    for f in forms {
        match f {
            TopForm::Define(name, e) => {
                out.insert(*name);
                e.walk(&mut |e| {
                    if let Expr::SetGlobal(s, _) = e {
                        out.insert(*s);
                    }
                });
            }
            TopForm::Expr(e) => e.walk(&mut |e| {
                if let Expr::SetGlobal(s, _) = e {
                    out.insert(*s);
                }
            }),
        }
    }
    out
}

/// The primitive-recognition table: global name → inlinable [`PrimOp`]
/// with its accepted argument-count range.
pub fn prim_table() -> &'static [(&'static str, PrimOp, usize, Option<usize>)] {
    use PrimOp::*;
    &[
        ("+", Add, 0, None),
        ("-", Sub, 1, None),
        ("*", Mul, 0, None),
        ("/", Div, 1, None),
        ("quotient", Quotient, 2, Some(2)),
        ("remainder", Remainder, 2, Some(2)),
        ("modulo", Modulo, 2, Some(2)),
        ("=", NumEq, 2, None),
        ("<", Lt, 2, None),
        ("<=", Le, 2, None),
        (">", Gt, 2, None),
        (">=", Ge, 2, None),
        ("add1", Add1, 1, Some(1)),
        ("sub1", Sub1, 1, Some(1)),
        ("1+", Add1, 1, Some(1)),
        ("1-", Sub1, 1, Some(1)),
        ("zero?", ZeroP, 1, Some(1)),
        ("cons", Cons, 2, Some(2)),
        ("car", Car, 1, Some(1)),
        ("cdr", Cdr, 1, Some(1)),
        ("set-car!", SetCar, 2, Some(2)),
        ("set-cdr!", SetCdr, 2, Some(2)),
        ("pair?", PairP, 1, Some(1)),
        ("null?", NullP, 1, Some(1)),
        ("eq?", EqP, 2, Some(2)),
        ("eqv?", EqvP, 2, Some(2)),
        ("not", Not, 1, Some(1)),
        ("symbol?", SymbolP, 1, Some(1)),
        ("procedure?", ProcedureP, 1, Some(1)),
        ("fixnum?", FixnumP, 1, Some(1)),
        ("flonum?", FlonumP, 1, Some(1)),
        ("boolean?", BooleanP, 1, Some(1)),
        ("string?", StringP, 1, Some(1)),
        ("vector?", VectorP, 1, Some(1)),
        ("char?", CharP, 1, Some(1)),
        ("vector-ref", VectorRef, 2, Some(2)),
        ("vector-set!", VectorSet, 3, Some(3)),
        ("vector-length", VectorLength, 1, Some(1)),
        ("make-vector", MakeVector, 1, Some(2)),
        ("box", BoxNew, 1, Some(1)),
        ("unbox", Unbox, 1, Some(1)),
        ("set-box!", SetBox, 2, Some(2)),
    ]
}

/// Rewrites calls to well-known globals into [`Expr::PrimApp`].
pub fn recognize_prims(e: Expr, user_defined: &HashSet<Sym>) -> Expr {
    map_expr(e, &mut |e| {
        if let Expr::Call { rator, rands } = &e {
            if let Expr::GlobalRef(s) = **rator {
                if !user_defined.contains(&s) {
                    for (name, op, min, max) in prim_table() {
                        if s.name() == *name
                            && rands.len() >= *min
                            && max.is_none_or(|m| rands.len() <= m)
                            && rands.len() <= u8::MAX as usize
                        {
                            let Expr::Call { rands, .. } = e else {
                                unreachable!()
                            };
                            return Expr::PrimApp { op: *op, rands };
                        }
                    }
                }
            }
        }
        e
    })
}

/// Runs cp0 to a (bounded) fixpoint.
pub fn optimize(mut e: Expr, opts: &Cp0Options) -> Expr {
    for _ in 0..4 {
        e = pass(e, opts);
    }
    e
}

/// Bottom-up transformation helper.
fn map_expr(e: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let e = match e {
        Expr::If(t, c, a) => Expr::If(
            Box::new(map_expr(*t, f)),
            Box::new(map_expr(*c, f)),
            Box::new(map_expr(*a, f)),
        ),
        Expr::Seq(es) => Expr::Seq(es.into_iter().map(|x| map_expr(x, f)).collect()),
        Expr::Let { bindings, body } => Expr::Let {
            bindings: bindings
                .into_iter()
                .map(|(v, x)| (v, map_expr(x, f)))
                .collect(),
            body: Box::new(map_expr(*body, f)),
        },
        Expr::Lambda(l) => {
            let l = (*l).clone();
            Expr::Lambda(std::rc::Rc::new(LambdaExpr {
                body: map_expr(l.body, f),
                ..l
            }))
        }
        Expr::SetLocal(v, x) => Expr::SetLocal(v, Box::new(map_expr(*x, f))),
        Expr::SetGlobal(s, x) => Expr::SetGlobal(s, Box::new(map_expr(*x, f))),
        Expr::Call { rator, rands } => Expr::Call {
            rator: Box::new(map_expr(*rator, f)),
            rands: rands.into_iter().map(|x| map_expr(x, f)).collect(),
        },
        Expr::PrimApp { op, rands } => Expr::PrimApp {
            op,
            rands: rands.into_iter().map(|x| map_expr(x, f)).collect(),
        },
        Expr::Wcm { key, val, body } => Expr::Wcm {
            key: Box::new(map_expr(*key, f)),
            val: Box::new(map_expr(*val, f)),
            body: Box::new(map_expr(*body, f)),
        },
        Expr::SetAttachment { val, body } => Expr::SetAttachment {
            val: Box::new(map_expr(*val, f)),
            body: Box::new(map_expr(*body, f)),
        },
        Expr::GetAttachment {
            dflt,
            var,
            body,
            consume,
        } => Expr::GetAttachment {
            dflt: Box::new(map_expr(*dflt, f)),
            var,
            body: Box::new(map_expr(*body, f)),
            consume,
        },
        leaf => leaf,
    };
    f(e)
}

fn pass(e: Expr, opts: &Cp0Options) -> Expr {
    map_expr(e, &mut |e| simplify(e, opts))
}

fn simplify(e: Expr, opts: &Cp0Options) -> Expr {
    match e {
        Expr::If(t, c, a) => match *t {
            Expr::Quote(v) => {
                if v.is_true() {
                    *c
                } else {
                    *a
                }
            }
            t => Expr::If(Box::new(t), c, a),
        },
        Expr::Seq(es) => {
            // Flatten nested seqs, drop pure non-final expressions.
            let mut flat = Vec::new();
            let n = es.len();
            for (i, x) in es.into_iter().enumerate() {
                let last = i + 1 == n;
                match x {
                    Expr::Seq(inner) => flat.extend(inner),
                    x if !last && x.is_pure() => {}
                    x => flat.push(x),
                }
            }
            // Dropping may have removed the last element's predecessors
            // only; re-drop pure non-finals after flattening.
            let n = flat.len();
            let mut out: Vec<Expr> = Vec::new();
            for (i, x) in flat.into_iter().enumerate() {
                let last = i + 1 == n;
                if last || !x.is_pure() {
                    out.push(x);
                }
            }
            match out.len() {
                0 => Expr::void(),
                1 => out.pop().unwrap(),
                _ => Expr::Seq(out),
            }
        }
        Expr::PrimApp { op, rands } => {
            if prim_is_foldable(op) && rands.iter().all(|r| matches!(r, Expr::Quote(_))) {
                let args: Vec<Value> = rands
                    .iter()
                    .map(|r| match r {
                        Expr::Quote(v) => *v,
                        _ => unreachable!(),
                    })
                    .collect();
                if let Ok(v) = cm_vm::prim_op_value(op, &args) {
                    return Expr::Quote(v);
                }
            }
            Expr::PrimApp { op, rands }
        }
        Expr::Call { rator, rands } => {
            // Beta: ((lambda (x ...) body) a ...) => (let ([x a] ...) body)
            if let Expr::Lambda(l) = &*rator {
                if l.rest.is_none() && l.params.len() == rands.len() {
                    let l = l.clone();
                    return simplify(
                        Expr::Let {
                            bindings: l.params.iter().copied().zip(rands).collect(),
                            body: Box::new(l.body.clone()),
                        },
                        opts,
                    );
                }
            }
            Expr::Call { rator, rands }
        }
        Expr::Let { bindings, body } => simplify_let(bindings, *body, opts),
        Expr::Wcm { key, val, body } => {
            // §7.3: if the body is a simple value expression that cannot
            // observe marks, drop the mark entirely (keeping key/val for
            // effect). Deliberately narrower than full transparency —
            // matching Racket's schemify, which compiles
            // (let ([x 5]) (wcm 'k 'v x)) to 5 but still emits mark
            // operations around primitive work.
            let simple_body = matches!(
                *body,
                Expr::Quote(_) | Expr::LocalRef(_) | Expr::GlobalRef(_) | Expr::Lambda(_)
            );
            if opts.elide_irrelevant_marks && simple_body {
                let mut parts = Vec::new();
                if !key.is_pure() {
                    parts.push(*key);
                }
                if !val.is_pure() {
                    parts.push(*val);
                }
                parts.push(*body);
                return simplify(Expr::Seq(parts), opts);
            }
            Expr::Wcm { key, val, body }
        }
        other => other,
    }
}

fn simplify_let(bindings: Vec<(VarId, Expr)>, body: Expr, opts: &Cp0Options) -> Expr {
    // Substitute trivial bindings; drop dead pure bindings.
    let mut subst: HashMap<VarId, Expr> = HashMap::new();
    let mut kept: Vec<(VarId, Expr)> = Vec::new();
    for (v, init) in bindings {
        let mutated = body.mutates(v) || kept.iter().any(|(_, e)| e.mutates(v));
        let trivial = matches!(init, Expr::Quote(_) | Expr::Lambda(_) | Expr::LocalRef(_))
            && !mutated
            && match &init {
                // Don't substitute a reference to a variable that is
                // itself mutated or rebound later.
                Expr::LocalRef(w) => !body.mutates(*w),
                // Lambdas are duplicated only when referenced at most once.
                Expr::Lambda(_) => body.count_refs(v) <= 1,
                _ => true,
            };
        if trivial {
            subst.insert(v, init);
        } else if body.count_refs(v) == 0 && !mutated && init.is_pure() {
            // Dead pure binding.
        } else if body.count_refs(v) == 0 && !mutated {
            // Dead but effectful: keep for effect as a sequence entry.
            kept.push((v, init));
        } else {
            kept.push((v, init));
        }
    }
    let body = if subst.is_empty() {
        body
    } else {
        substitute(body, &subst)
    };
    if kept.is_empty() {
        return body;
    }
    // (let ([x E]) x) => E, guarded by §7.4.
    if kept.len() == 1 {
        if let Expr::LocalRef(v) = body {
            let (w, init) = &kept[0];
            if v == *w && (!opts.attachment_restriction || init.attachment_transparent()) {
                let mut kept = kept;
                return kept.remove(0).1;
            }
        }
    }
    Expr::Let {
        bindings: kept,
        body: Box::new(body),
    }
}

/// Substitutes expressions for local references (used for trivial
/// bindings; the replacements are duplication-safe).
fn substitute(e: Expr, subst: &HashMap<VarId, Expr>) -> Expr {
    map_expr(e, &mut |e| match e {
        Expr::LocalRef(v) => subst.get(&v).cloned().unwrap_or(Expr::LocalRef(v)),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_sexpr::parse_str;

    fn optimize_src(src: &str, opts: &Cp0Options) -> Expr {
        let data = parse_str(src).unwrap();
        let mut ex = crate::expand::Expander::new();
        let forms = ex.expand_program(&data).unwrap();
        let user = user_defined_names(&forms);
        let TopForm::Expr(e) = forms.into_iter().last().unwrap() else {
            panic!("expected expression")
        };
        optimize(recognize_prims(e, &user), opts)
    }

    #[test]
    fn folds_arithmetic() {
        let e = optimize_src("(+ 1 (* 2 3))", &Cp0Options::default());
        assert!(matches!(e, Expr::Quote(Value::Fixnum(7))), "{e:?}");
    }

    #[test]
    fn folds_conditionals() {
        let e = optimize_src("(if (< 1 2) 'yes 'no)", &Cp0Options::default());
        assert!(matches!(e, Expr::Quote(Value::Sym(s)) if s.name() == "yes"));
    }

    #[test]
    fn beta_reduces() {
        let e = optimize_src("((lambda (x) (+ x 1)) 41)", &Cp0Options::default());
        assert!(matches!(e, Expr::Quote(Value::Fixnum(42))), "{e:?}");
    }

    #[test]
    fn paper_example_elides_irrelevant_mark() {
        // §7.3: (let ([x 5]) (with-continuation-mark 'key 'val x)) => 5
        let e = optimize_src(
            "(let ([x 5]) (with-continuation-mark 'key 'val x))",
            &Cp0Options::default(),
        );
        assert!(matches!(e, Expr::Quote(Value::Fixnum(5))), "{e:?}");
    }

    #[test]
    fn paper_example_preserves_nontail_wcm_binding() {
        // §7.4: (let ([v (wcm 'key 'val (work))]) v) must NOT become (work)
        // when the restriction is on.
        let src = "(let ([v (with-continuation-mark 'key 'val (work))]) v)";
        let e = optimize_src(src, &Cp0Options::default());
        assert!(matches!(e, Expr::Let { .. }), "restricted: {e:?}");
        let e = optimize_src(
            src,
            &Cp0Options {
                attachment_restriction: false,
                elide_irrelevant_marks: true,
            },
        );
        assert!(matches!(e, Expr::Wcm { .. }), "unrestricted: {e:?}");
    }

    #[test]
    fn let_of_transparent_expr_simplifies_even_restricted() {
        // §7.4's second example: collapsing a frame around (+ 1 2)-style
        // work is fine because attachments can't observe it.
        let e = optimize_src("(let ([x (+ y 1)]) x)", &Cp0Options::default());
        assert!(matches!(e, Expr::PrimApp { .. }), "{e:?}");
    }

    #[test]
    fn call_of_unknown_fn_is_not_collapsed() {
        let e = optimize_src("(let ([x (work)]) x)", &Cp0Options::default());
        assert!(matches!(e, Expr::Let { .. }), "{e:?}");
    }

    #[test]
    fn dead_bindings_are_dropped() {
        let e = optimize_src("(let ([x 1] [y (f)]) y)", &Cp0Options::default());
        // x is dead and pure; y stays.
        let Expr::Let { bindings, .. } = &e else {
            panic!("{e:?}")
        };
        assert_eq!(bindings.len(), 1);
    }

    #[test]
    fn seq_drops_pure_prefix() {
        // Wrapped in a lambda because top-level begin splices.
        let e = optimize_src("(lambda () (begin 1 2 (f) 3))", &Cp0Options::default());
        let Expr::Lambda(l) = &e else { panic!("{e:?}") };
        let Expr::Seq(es) = &l.body else {
            panic!("{:?}", l.body)
        };
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn does_not_fold_effectful_prims() {
        let e = optimize_src("(cons 1 2)", &Cp0Options::default());
        assert!(matches!(e, Expr::PrimApp { .. }));
    }

    #[test]
    fn user_redefined_prims_not_recognized() {
        let data = parse_str("(define (car x) 'mine) (car 5)").unwrap();
        let mut ex = crate::expand::Expander::new();
        let forms = ex.expand_program(&data).unwrap();
        let user = user_defined_names(&forms);
        assert!(user.contains(&cm_sexpr::sym("car")));
        let TopForm::Expr(e) = &forms[1] else {
            panic!()
        };
        let e = recognize_prims(e.clone(), &user);
        assert!(matches!(e, Expr::Call { .. }));
    }
}
