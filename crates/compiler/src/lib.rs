//! The compile-time half of the continuation-marks system: a Scheme
//! compiler targeting the `cm-vm` bytecode machine, with the paper's §7
//! compiler support for continuation attachments.
//!
//! Pipeline: read → [`expand`](expand::Expander) (special forms +
//! `syntax-rules`) → [`cp0`] (folding/inlining with the §7.4 attachment
//! restriction and the §7.3 mark elision) → [`lower`](lower::lower)
//! (attachment-primitive recognition, `with-continuation-mark` expansion,
//! assignment conversion) → [`codegen`](codegen::gen_program) (the §7.2
//! position categorization).
//!
//! # Examples
//!
//! ```
//! use cm_compiler::{Compiler, CompilerConfig};
//! use cm_vm::{Machine, MachineConfig, Value};
//! use std::{cell::RefCell, rc::Rc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let globals = Rc::new(RefCell::new(cm_vm::Globals::new()));
//! let mut machine = Machine::with_globals(MachineConfig::default(), globals.clone());
//! let mut compiler = Compiler::new(CompilerConfig::default(), globals);
//! let code = compiler.compile_str("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)")?;
//! let result = machine.run_code(code)?;
//! assert!(result.eq_value(&Value::fixnum(3628800)));
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod codegen;
pub mod cp0;
pub mod expand;
pub mod lint;
pub mod lower;

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use cm_sexpr::{Datum, Span};
use cm_vm::{Code, Globals, MarkModel};

use ast::TopForm;
use expand::Expander;

/// A compile-time error with its source location.
#[derive(Debug, Clone)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
    /// Source location (synthetic for programmatic input).
    pub span: Span,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<cm_sexpr::ReadError> for CompileError {
    fn from(e: cm_sexpr::ReadError) -> CompileError {
        CompileError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Compiler switches; the defaults are the paper's full system, each
/// switch reproduces one evaluation variant (§8.2, §8.5).
#[derive(Debug, Clone)]
pub struct CompilerConfig {
    /// §7.4: restrict cp0 simplifications that would collapse observable
    /// continuation frames. `false` = the "unmod" Chez variant.
    pub cp0_attachment_restriction: bool,
    /// §7.3: drop marks whose body cannot observe them.
    pub elide_irrelevant_marks: bool,
    /// §7.2: recognize the attachment primitives and specialize by
    /// position. `false` = the "no opt" ablation (uniform native calls
    /// with closure allocation).
    pub attachment_opt: bool,
    /// Recognize attachment-transparent primitives inside mark bodies.
    /// `false` = the "no prim" ablation (reify around primitives).
    pub prim_attachment_opt: bool,
    /// Mark representation the code is generated for (must match the
    /// machine's [`MarkModel`]).
    pub mark_model: MarkModel,
    /// Run the `cm-analysis` bytecode verifier over every compiled code
    /// object (stack discipline, index soundness, §7.2 attachment
    /// discipline) and the §7.4 cp0 frame-collapse lint. Defaults to on
    /// in debug builds.
    pub verify_bytecode: bool,
}

impl Default for CompilerConfig {
    fn default() -> CompilerConfig {
        CompilerConfig {
            cp0_attachment_restriction: true,
            elide_irrelevant_marks: true,
            attachment_opt: true,
            prim_attachment_opt: true,
            mark_model: MarkModel::Attachments,
            verify_bytecode: cfg!(debug_assertions),
        }
    }
}

impl CompilerConfig {
    /// Whether the eager (old Racket) mark model is targeted.
    pub fn eager_marks(&self) -> bool {
        self.mark_model == MarkModel::EagerMarkStack
    }
}

/// A compilation session: an expander whose macro definitions persist
/// across [`Compiler::compile_str`] calls (so a prelude can define macros
/// used by later programs) and a global table shared with the machine.
pub struct Compiler {
    expander: Expander,
    globals: Rc<RefCell<Globals>>,
    config: CompilerConfig,
    var_counter: u32,
    lints: Vec<lint::Finding>,
}

impl Compiler {
    /// Creates a session over a shared global table.
    pub fn new(config: CompilerConfig, globals: Rc<RefCell<Globals>>) -> Compiler {
        Compiler {
            expander: Expander::new(),
            globals,
            config,
            var_counter: 0,
            lints: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Takes the §7.4 lint findings accumulated since the last call.
    ///
    /// With [`CompilerConfig::cp0_attachment_restriction`] on, a finding
    /// is a compiler bug and [`Compiler::compile_data`] reports it as a
    /// [`CompileError`] instead; findings accumulate here only when the
    /// restriction is deliberately off (the "unmod" ablation), where the
    /// §7.4 miscompilation class is expected and measurable.
    pub fn take_lints(&mut self) -> Vec<lint::Finding> {
        std::mem::take(&mut self.lints)
    }

    /// Compiles source text to a runnable code object.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on read or expansion errors.
    pub fn compile_str(&mut self, src: &str) -> Result<Rc<Code>, CompileError> {
        let data = cm_sexpr::parse_str(src)?;
        self.compile_data(&data)
    }

    /// Compiles already-read data to a runnable code object.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on expansion errors.
    pub fn compile_data(&mut self, data: &[Datum]) -> Result<Rc<Code>, CompileError> {
        let forms = self.expander.expand_program(data)?;
        let user = cp0::user_defined_names(&forms);
        let cp0_opts = cp0::Cp0Options {
            attachment_restriction: self.config.cp0_attachment_restriction,
            elide_irrelevant_marks: self.config.elide_irrelevant_marks,
        };
        // The expander allocates ids monotonically across calls; continue
        // above anything it has produced so far.
        self.var_counter = self
            .var_counter
            .max(self.expander.var_count())
            .max(1_000_000);
        let mut supply = lower::VarSupply::starting_at(self.var_counter);
        let verify = self.config.verify_bytecode;
        let mut findings = Vec::new();
        let forms: Vec<TopForm> = forms
            .into_iter()
            .map(|f| {
                let mut run = |e| {
                    let recognized = cp0::recognize_prims(e, &user);
                    let before = verify.then(|| lint::frame_profile(&recognized));
                    let optimized = cp0::optimize(recognized, &cp0_opts);
                    if let Some(before) = before {
                        findings.extend(lint::diff(&before, &lint::frame_profile(&optimized)));
                    }
                    lower::lower(optimized, &self.config, &mut supply)
                };
                match f {
                    TopForm::Define(n, e) => TopForm::Define(n, run(e)),
                    TopForm::Expr(e) => TopForm::Expr(run(e)),
                }
            })
            .collect();
        if !findings.is_empty() {
            if self.config.cp0_attachment_restriction {
                // The restriction should have blocked the rewrite: this is
                // a compiler bug, not a user error — fail the compile.
                return Err(CompileError {
                    message: findings
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n"),
                    span: Span::new(0, 0),
                });
            }
            self.lints.extend(findings);
        }
        let code = codegen::gen_program(&forms, &self.globals, &self.config);
        if verify {
            if let Err(violations) = cm_analysis::verify(&code, self.config.mark_model) {
                let mut message = String::from("bytecode verification failed:\n");
                for v in &violations {
                    message.push_str(&format!("  {v}\n"));
                }
                message.push_str("disassembly:\n");
                message.push_str(&code.disassemble());
                return Err(CompileError {
                    message,
                    span: Span::new(0, 0),
                });
            }
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_full_system() {
        let c = CompilerConfig::default();
        assert!(c.cp0_attachment_restriction && c.attachment_opt && c.prim_attachment_opt);
        assert!(!c.eager_marks());
    }

    #[test]
    fn compile_error_displays() {
        let e = CompileError {
            message: "boom".into(),
            span: Span::new(1, 2),
        };
        assert!(e.to_string().contains("boom"));
    }
}
