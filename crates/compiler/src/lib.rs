//! The compile-time half of the continuation-marks system: a Scheme
//! compiler targeting the `cm-vm` bytecode machine, with the paper's §7
//! compiler support for continuation attachments.
//!
//! Pipeline: read → [`expand`](expand::Expander) (special forms +
//! `syntax-rules`) → [`cp0`] (folding/inlining with the §7.4 attachment
//! restriction and the §7.3 mark elision) → [`lower`](lower::lower)
//! (attachment-primitive recognition, `with-continuation-mark` expansion,
//! assignment conversion) → [`codegen`](codegen::gen_program) (the §7.2
//! position categorization).
//!
//! # Examples
//!
//! ```
//! use cm_compiler::{Compiler, CompilerConfig};
//! use cm_vm::{Machine, MachineConfig, Value};
//! use std::{cell::RefCell, rc::Rc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let globals = Rc::new(RefCell::new(cm_vm::Globals::new()));
//! let mut machine = Machine::with_globals(MachineConfig::default(), globals.clone());
//! let mut compiler = Compiler::new(CompilerConfig::default(), globals);
//! let code = compiler.compile_str("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)")?;
//! let result = machine.run_code(code)?;
//! assert!(result.eq_value(&Value::fixnum(3628800)));
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod codegen;
pub mod cp0;
pub mod expand;
pub mod lint;
pub mod lower;
pub mod markflow;

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use cm_analysis::markflow::{MarkFlowFacts, TrustedObservers};
use cm_sexpr::{Datum, Span, Sym};
use cm_vm::{Code, Globals, MarkModel};

use ast::TopForm;
use expand::Expander;

/// A compile-time error with its source location.
#[derive(Debug, Clone)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
    /// Source location (synthetic for programmatic input).
    pub span: Span,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<cm_sexpr::ReadError> for CompileError {
    fn from(e: cm_sexpr::ReadError) -> CompileError {
        CompileError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Compiler switches; the defaults are the paper's full system, each
/// switch reproduces one evaluation variant (§8.2, §8.5).
#[derive(Debug, Clone)]
pub struct CompilerConfig {
    /// §7.4: restrict cp0 simplifications that would collapse observable
    /// continuation frames. `false` = the "unmod" Chez variant.
    pub cp0_attachment_restriction: bool,
    /// §7.3: drop marks whose body cannot observe them.
    pub elide_irrelevant_marks: bool,
    /// §7.2: recognize the attachment primitives and specialize by
    /// position. `false` = the "no opt" ablation (uniform native calls
    /// with closure allocation).
    pub attachment_opt: bool,
    /// Recognize attachment-transparent primitives inside mark bodies.
    /// `false` = the "no prim" ablation (reify around primitives).
    pub prim_attachment_opt: bool,
    /// Mark representation the code is generated for (must match the
    /// machine's [`MarkModel`]).
    pub mark_model: MarkModel,
    /// Run the `cm-analysis` bytecode verifier over every compiled code
    /// object (stack discipline, index soundness, §7.2 attachment
    /// discipline) and the §7.4 cp0 frame-collapse lint. Defaults to on
    /// in debug builds.
    pub verify_bytecode: bool,
    /// Run the interprocedural mark-flow analysis over each compiled
    /// program and apply its proven-safe rewrites (dead-key mark
    /// elision and `call/attach` → `call` + `pop-attach`). The eighth
    /// engine config; requires [`Compiler::enable_mark_flow`] to supply
    /// the prelude observer summaries before it takes effect.
    pub mark_flow_opt: bool,
}

impl Default for CompilerConfig {
    fn default() -> CompilerConfig {
        CompilerConfig {
            cp0_attachment_restriction: true,
            elide_irrelevant_marks: true,
            attachment_opt: true,
            prim_attachment_opt: true,
            mark_model: MarkModel::Attachments,
            verify_bytecode: cfg!(debug_assertions),
            mark_flow_opt: false,
        }
    }
}

impl CompilerConfig {
    /// Whether the eager (old Racket) mark model is targeted.
    pub fn eager_marks(&self) -> bool {
        self.mark_model == MarkModel::EagerMarkStack
    }
}

/// A compilation session: an expander whose macro definitions persist
/// across [`Compiler::compile_str`] calls (so a prelude can define macros
/// used by later programs) and a global table shared with the machine.
pub struct Compiler {
    expander: Expander,
    globals: Rc<RefCell<Globals>>,
    config: CompilerConfig,
    var_counter: u32,
    lints: Vec<lint::Finding>,
    mark_flow: Option<MarkFlowState>,
    mark_flow_facts: Option<MarkFlowFacts>,
}

/// Session state for the interprocedural mark-flow pass.
struct MarkFlowState {
    /// Prelude observer summaries (built by `cm-core` after prelude
    /// load — the compiler itself has no prelude knowledge).
    trusted: TrustedObservers,
    /// Apply the proven-safe rewrites; `false` = facts-only mode
    /// (`cm-verify --facts`).
    apply: bool,
}

impl Compiler {
    /// Creates a session over a shared global table.
    pub fn new(config: CompilerConfig, globals: Rc<RefCell<Globals>>) -> Compiler {
        Compiler {
            expander: Expander::new(),
            globals,
            config,
            var_counter: 0,
            lints: Vec::new(),
            mark_flow: None,
            mark_flow_facts: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Takes the §7.4 lint findings accumulated since the last call.
    ///
    /// With [`CompilerConfig::cp0_attachment_restriction`] on, a finding
    /// is a compiler bug and [`Compiler::compile_data`] reports it as a
    /// [`CompileError`] instead; findings accumulate here only when the
    /// restriction is deliberately off (the "unmod" ablation), where the
    /// §7.4 miscompilation class is expected and measurable.
    pub fn take_lints(&mut self) -> Vec<lint::Finding> {
        std::mem::take(&mut self.lints)
    }

    /// Arms the interprocedural mark-flow pass for subsequent
    /// compilations. `trusted` carries the prelude observer summaries
    /// (built by `cm-core` once the prelude is loaded); with `apply`
    /// false the pass only computes facts (`cm-verify --facts`)
    /// without rewriting anything.
    pub fn enable_mark_flow(&mut self, trusted: TrustedObservers, apply: bool) {
        self.mark_flow = Some(MarkFlowState { trusted, apply });
    }

    /// Takes the mark-flow facts from the most recent compilation, if
    /// the pass was armed for it.
    pub fn take_mark_flow_facts(&mut self) -> Option<MarkFlowFacts> {
        self.mark_flow_facts.take()
    }

    /// Compiles source text to a runnable code object.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on read or expansion errors.
    pub fn compile_str(&mut self, src: &str) -> Result<Rc<Code>, CompileError> {
        let data = cm_sexpr::parse_str(src)?;
        self.compile_data(&data)
    }

    /// Compiles already-read data to a runnable code object.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on expansion errors.
    pub fn compile_data(&mut self, data: &[Datum]) -> Result<Rc<Code>, CompileError> {
        let forms = self.expander.expand_program(data)?;
        let user = cp0::user_defined_names(&forms);
        let cp0_opts = cp0::Cp0Options {
            attachment_restriction: self.config.cp0_attachment_restriction,
            elide_irrelevant_marks: self.config.elide_irrelevant_marks,
        };
        // The expander allocates ids monotonically across calls; continue
        // above anything it has produced so far.
        self.var_counter = self
            .var_counter
            .max(self.expander.var_count())
            .max(1_000_000);
        let mut supply = lower::VarSupply::starting_at(self.var_counter);
        let verify = self.config.verify_bytecode;
        let mut findings = Vec::new();
        // cp0 runs once (with the §7.4 lint diff alongside it); the
        // optimized-but-not-yet-lowered tree is kept so the mark-flow
        // pass can re-lower after dead-key elision without re-running
        // cp0 or double-reporting lints.
        let optimized: Vec<TopForm> = forms
            .into_iter()
            .map(|f| {
                let mut run = |e| {
                    let recognized = cp0::recognize_prims(e, &user);
                    let before = verify.then(|| lint::frame_profile(&recognized));
                    let optimized = cp0::optimize(recognized, &cp0_opts);
                    if let Some(before) = before {
                        findings.extend(lint::diff(&before, &lint::frame_profile(&optimized)));
                    }
                    optimized
                };
                match f {
                    TopForm::Define(n, e) => TopForm::Define(n, run(e)),
                    TopForm::Expr(e) => TopForm::Expr(run(e)),
                }
            })
            .collect();
        if !findings.is_empty() {
            if self.config.cp0_attachment_restriction {
                // The restriction should have blocked the rewrite: this is
                // a compiler bug, not a user error — fail the compile.
                return Err(CompileError {
                    message: findings
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n"),
                    span: Span::new(0, 0),
                });
            }
            self.lints.extend(findings);
        }
        // The mark-flow pass targets the attachments representation;
        // the eager mark-stack baseline keeps its historical codegen.
        let code = if self.mark_flow.is_some() && !self.config.eager_marks() {
            self.compile_mark_flow(optimized, &mut supply)?
        } else {
            self.lower_and_gen(optimized, &mut supply)
        };
        if verify {
            if let Err(violations) = cm_analysis::verify(&code, self.config.mark_model) {
                return Err(verification_error(&code, &violations));
            }
        }
        Ok(code)
    }

    /// Lowering and codegen for one already-cp0'd program.
    fn lower_and_gen(&self, forms: Vec<TopForm>, supply: &mut lower::VarSupply) -> Rc<Code> {
        let lowered: Vec<TopForm> = forms
            .into_iter()
            .map(|f| match f {
                TopForm::Define(n, e) => TopForm::Define(n, lower::lower(e, &self.config, supply)),
                TopForm::Expr(e) => TopForm::Expr(lower::lower(e, &self.config, supply)),
            })
            .collect();
        codegen::gen_program(&lowered, &self.globals, &self.config)
    }

    /// The mark-flow compilation path: generate once, analyze, elide
    /// dead-key marks (regenerating from the saved cp0 tree), rewrite
    /// non-observing `call/attach` sites, and re-verify the result
    /// unconditionally — the optimizer's soundness argument is that the
    /// abstract-interpretation verifier accepts every output.
    fn compile_mark_flow(
        &mut self,
        optimized: Vec<TopForm>,
        supply: &mut lower::VarSupply,
    ) -> Result<Rc<Code>, CompileError> {
        let apply = self.mark_flow.as_ref().is_some_and(|m| m.apply);
        let expr_facts = markflow::collect_expr_facts(&optimized);
        let (code0, saved) = if apply {
            (
                self.lower_and_gen(optimized.clone(), supply),
                Some(optimized),
            )
        } else {
            (self.lower_and_gen(optimized, supply), None)
        };
        let analyze = |me: &Compiler, code: &Rc<Code>| {
            let globals = me.globals.borrow();
            let trusted = &me.mark_flow.as_ref().expect("mark-flow armed").trusted;
            cm_analysis::markflow::analyze(code, &globals, trusted, &expr_facts)
        };
        let mut facts = analyze(self, &code0);
        let mut code = code0;
        let mut elided = 0;
        if let Some(saved) = saved {
            if !facts.dead_key_syms.is_empty() {
                let dead: HashSet<Sym> = facts.dead_key_syms.iter().copied().collect();
                let (elided_forms, n) = markflow::elide_dead_wcms(saved, &dead);
                if n > 0 {
                    elided = n;
                    code = self.lower_and_gen(elided_forms, supply);
                    // Call-site offsets moved: the rewrite facts must
                    // come from the code actually being rewritten.
                    facts = analyze(self, &code);
                }
            }
        }
        facts.elided_wcms = elided;
        if apply {
            let rewritten = cm_analysis::markflow::apply_rewrites(&code, &mut facts);
            if elided > 0 || !Rc::ptr_eq(&rewritten, &code) {
                // Soundness by construction, even in release builds
                // where `verify_bytecode` defaults off.
                if let Err(violations) = cm_analysis::verify(&rewritten, self.config.mark_model) {
                    return Err(verification_error(&rewritten, &violations));
                }
            }
            code = rewritten;
        }
        self.mark_flow_facts = Some(facts);
        Ok(code)
    }
}

fn verification_error(code: &Code, violations: &[cm_analysis::Violation]) -> CompileError {
    let mut message = String::from("bytecode verification failed:\n");
    for v in violations {
        message.push_str(&format!("  {v}\n"));
    }
    message.push_str("disassembly:\n");
    message.push_str(&code.disassemble());
    CompileError {
        message,
        span: Span::new(0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_full_system() {
        let c = CompilerConfig::default();
        assert!(c.cp0_attachment_restriction && c.attachment_opt && c.prim_attachment_opt);
        assert!(!c.eager_marks());
    }

    #[test]
    fn compile_error_displays() {
        let e = CompileError {
            message: "boom".into(),
            span: Span::new(1, 2),
        };
        assert!(e.to_string().contains("boom"));
    }
}
