//! The compile-time half of the continuation-marks system: a Scheme
//! compiler targeting the `cm-vm` bytecode machine, with the paper's §7
//! compiler support for continuation attachments.
//!
//! Pipeline: read → [`expand`](expand::Expander) (special forms +
//! `syntax-rules`) → [`cp0`] (folding/inlining with the §7.4 attachment
//! restriction and the §7.3 mark elision) → [`lower`](lower::lower)
//! (attachment-primitive recognition, `with-continuation-mark` expansion,
//! assignment conversion) → [`codegen`](codegen::gen_program) (the §7.2
//! position categorization).
//!
//! # Examples
//!
//! ```
//! use cm_compiler::{Compiler, CompilerConfig};
//! use cm_vm::{Machine, MachineConfig, Value};
//! use std::{cell::RefCell, rc::Rc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let globals = Rc::new(RefCell::new(cm_vm::Globals::new()));
//! let mut machine = Machine::with_globals(MachineConfig::default(), globals.clone());
//! let mut compiler = Compiler::new(CompilerConfig::default(), globals);
//! let code = compiler.compile_str("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)")?;
//! let result = machine.run_code(code)?;
//! assert!(result.eq_value(&Value::fixnum(3628800)));
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod codegen;
pub mod cp0;
pub mod expand;
pub mod lower;

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use cm_sexpr::{Datum, Span};
use cm_vm::{Code, Globals, MarkModel};

use ast::TopForm;
use expand::Expander;

/// A compile-time error with its source location.
#[derive(Debug, Clone)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
    /// Source location (synthetic for programmatic input).
    pub span: Span,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<cm_sexpr::ReadError> for CompileError {
    fn from(e: cm_sexpr::ReadError) -> CompileError {
        CompileError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Compiler switches; the defaults are the paper's full system, each
/// switch reproduces one evaluation variant (§8.2, §8.5).
#[derive(Debug, Clone)]
pub struct CompilerConfig {
    /// §7.4: restrict cp0 simplifications that would collapse observable
    /// continuation frames. `false` = the "unmod" Chez variant.
    pub cp0_attachment_restriction: bool,
    /// §7.3: drop marks whose body cannot observe them.
    pub elide_irrelevant_marks: bool,
    /// §7.2: recognize the attachment primitives and specialize by
    /// position. `false` = the "no opt" ablation (uniform native calls
    /// with closure allocation).
    pub attachment_opt: bool,
    /// Recognize attachment-transparent primitives inside mark bodies.
    /// `false` = the "no prim" ablation (reify around primitives).
    pub prim_attachment_opt: bool,
    /// Mark representation the code is generated for (must match the
    /// machine's [`MarkModel`]).
    pub mark_model: MarkModel,
}

impl Default for CompilerConfig {
    fn default() -> CompilerConfig {
        CompilerConfig {
            cp0_attachment_restriction: true,
            elide_irrelevant_marks: true,
            attachment_opt: true,
            prim_attachment_opt: true,
            mark_model: MarkModel::Attachments,
        }
    }
}

impl CompilerConfig {
    /// Whether the eager (old Racket) mark model is targeted.
    pub fn eager_marks(&self) -> bool {
        self.mark_model == MarkModel::EagerMarkStack
    }
}

/// A compilation session: an expander whose macro definitions persist
/// across [`Compiler::compile_str`] calls (so a prelude can define macros
/// used by later programs) and a global table shared with the machine.
pub struct Compiler {
    expander: Expander,
    globals: Rc<RefCell<Globals>>,
    config: CompilerConfig,
    var_counter: u32,
}

impl Compiler {
    /// Creates a session over a shared global table.
    pub fn new(config: CompilerConfig, globals: Rc<RefCell<Globals>>) -> Compiler {
        Compiler {
            expander: Expander::new(),
            globals,
            config,
            var_counter: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Compiles source text to a runnable code object.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on read or expansion errors.
    pub fn compile_str(&mut self, src: &str) -> Result<Rc<Code>, CompileError> {
        let data = cm_sexpr::parse_str(src)?;
        self.compile_data(&data)
    }

    /// Compiles already-read data to a runnable code object.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on expansion errors.
    pub fn compile_data(&mut self, data: &[Datum]) -> Result<Rc<Code>, CompileError> {
        let forms = self.expander.expand_program(data)?;
        let user = cp0::user_defined_names(&forms);
        let cp0_opts = cp0::Cp0Options {
            attachment_restriction: self.config.cp0_attachment_restriction,
            elide_irrelevant_marks: self.config.elide_irrelevant_marks,
        };
        // The expander allocates ids monotonically across calls; continue
        // above anything it has produced so far.
        self.var_counter = self.var_counter.max(self.expander.var_count()).max(1_000_000);
        let mut supply = lower::VarSupply::starting_at(self.var_counter);
        let forms: Vec<TopForm> = forms
            .into_iter()
            .map(|f| {
                let mut run = |e| {
                    lower::lower(
                        cp0::optimize(cp0::recognize_prims(e, &user), &cp0_opts),
                        &self.config,
                        &mut supply,
                    )
                };
                match f {
                    TopForm::Define(n, e) => TopForm::Define(n, run(e)),
                    TopForm::Expr(e) => TopForm::Expr(run(e)),
                }
            })
            .collect();
        Ok(codegen::gen_program(&forms, &self.globals, &self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_full_system() {
        let c = CompilerConfig::default();
        assert!(c.cp0_attachment_restriction && c.attachment_opt && c.prim_attachment_opt);
        assert!(!c.eager_marks());
    }

    #[test]
    fn compile_error_displays() {
        let e = CompileError {
            message: "boom".into(),
            span: Span::new(1, 2),
        };
        assert!(e.to_string().contains("boom"));
    }
}
