//! The expander: surface syntax → core [`Expr`].
//!
//! Handles the special forms (`lambda`, `let` family, `cond`, `case`,
//! `do`, `and`/`or`, `quasiquote`, `with-continuation-mark`, ...),
//! non-hygienic `syntax-rules` macros, internal definitions, and
//! alpha-renaming of every binding to a unique [`VarId`].

use std::collections::HashMap;

use cm_sexpr::{sym, Datum, DatumKind, Span, Sym};
use cm_vm::Value;

use crate::ast::{Expr, LambdaExpr, TopForm, VarId};
use crate::CompileError;

/// A `syntax-rules` macro definition.
#[derive(Debug, Clone)]
pub struct MacroDef {
    literals: Vec<Sym>,
    rules: Vec<(Datum, Datum)>,
}

/// The expander state.
#[derive(Debug, Default)]
pub struct Expander {
    scopes: Vec<HashMap<Sym, VarId>>,
    macros: HashMap<Sym, MacroDef>,
    next_var: VarId,
}

const MAX_EXPANSION_DEPTH: usize = 500;

fn err(span: Span, message: impl Into<String>) -> CompileError {
    CompileError {
        message: message.into(),
        span,
    }
}

impl Expander {
    /// Creates a fresh expander.
    pub fn new() -> Expander {
        Expander::default()
    }

    /// Registers a macro without going through `define-syntax` (used to
    /// preload library macros).
    pub fn define_macro(&mut self, name: Sym, literals: Vec<Sym>, rules: Vec<(Datum, Datum)>) {
        self.macros.insert(name, MacroDef { literals, rules });
    }

    fn fresh(&mut self) -> VarId {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// Number of variable ids allocated so far (lowering allocates above
    /// this).
    pub fn var_count(&self) -> VarId {
        self.next_var
    }

    fn lookup(&self, s: Sym) -> Option<VarId> {
        self.scopes.iter().rev().find_map(|m| m.get(&s).copied())
    }

    fn bind(&mut self, s: Sym) -> VarId {
        let v = self.fresh();
        self.scopes
            .last_mut()
            .expect("bind outside scope")
            .insert(s, v);
        v
    }

    /// Expands a whole program.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for malformed syntax.
    pub fn expand_program(&mut self, data: &[Datum]) -> Result<Vec<TopForm>, CompileError> {
        let mut out = Vec::new();
        for d in data {
            self.expand_top(d, &mut out)?;
        }
        Ok(out)
    }

    fn expand_top(&mut self, d: &Datum, out: &mut Vec<TopForm>) -> Result<(), CompileError> {
        if let Some((head, _)) = d.as_pair() {
            if let Some(s) = head.as_sym() {
                if self.lookup(s).is_none() {
                    match s.name() {
                        "define-syntax" => return self.do_define_syntax(d),
                        "begin" => {
                            for sub in d.list_iter().skip(1) {
                                self.expand_top(sub, out)?;
                            }
                            return Ok(());
                        }
                        "define" => {
                            let (name, expr) = self.parse_define(d)?;
                            let expr = self.expand_expr(&expr, 0)?;
                            out.push(TopForm::Define(name, expr));
                            return Ok(());
                        }
                        _ => {}
                    }
                }
            }
        }
        let e = self.expand_expr(d, 0)?;
        out.push(TopForm::Expr(e));
        Ok(())
    }

    /// Parses `(define name expr)` / `(define (name . args) body...)` into
    /// a name and an expression datum.
    fn parse_define(&mut self, d: &Datum) -> Result<(Sym, Datum), CompileError> {
        let items: Vec<&Datum> = d.list_iter().collect();
        if items.len() < 2 {
            return Err(err(d.span, "malformed define"));
        }
        match &items[1].kind {
            DatumKind::Symbol(name) => {
                let expr = if items.len() == 3 {
                    items[2].clone()
                } else if items.len() == 2 {
                    Datum::list([Datum::symbol("void")])
                } else {
                    return Err(err(d.span, "define: too many forms"));
                };
                Ok((*name, expr))
            }
            DatumKind::Pair(p) => {
                // (define (name . formals) body...) => (define name (lambda formals body...))
                let name =
                    p.0.as_sym()
                        .ok_or_else(|| err(items[1].span, "define: expected procedure name"))?;
                let formals = p.1.clone();
                let mut lam = vec![Datum::symbol("lambda"), formals];
                lam.extend(items[2..].iter().map(|d| (*d).clone()));
                Ok((name, Datum::list(lam)))
            }
            _ => Err(err(items[1].span, "define: expected name")),
        }
    }

    fn do_define_syntax(&mut self, d: &Datum) -> Result<(), CompileError> {
        let items: Vec<&Datum> = d.list_iter().collect();
        if items.len() != 3 {
            return Err(err(d.span, "malformed define-syntax"));
        }
        let name = items[1]
            .as_sym()
            .ok_or_else(|| err(items[1].span, "define-syntax: expected name"))?;
        let rules: Vec<&Datum> = items[2].list_iter().collect();
        if rules.is_empty() || !rules[0].is_sym("syntax-rules") {
            return Err(err(items[2].span, "define-syntax: expected syntax-rules"));
        }
        let literals = rules
            .get(1)
            .and_then(|d| d.proper_list())
            .ok_or_else(|| err(items[2].span, "syntax-rules: expected literals list"))?
            .iter()
            .filter_map(Datum::as_sym)
            .collect();
        let mut parsed = Vec::new();
        for rule in &rules[2..] {
            let parts = rule
                .proper_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| err(rule.span, "syntax-rules: expected (pattern template)"))?;
            parsed.push((parts[0].clone(), parts[1].clone()));
        }
        self.macros.insert(
            name,
            MacroDef {
                literals,
                rules: parsed,
            },
        );
        Ok(())
    }

    /// Expands one expression.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for malformed syntax.
    pub fn expand_expr(&mut self, d: &Datum, depth: usize) -> Result<Expr, CompileError> {
        if depth > MAX_EXPANSION_DEPTH {
            return Err(err(d.span, "macro expansion too deep"));
        }
        match &d.kind {
            DatumKind::Fixnum(_)
            | DatumKind::Flonum(_)
            | DatumKind::Bool(_)
            | DatumKind::Char(_)
            | DatumKind::Str(_)
            | DatumKind::Vector(_) => Ok(Expr::Quote(Value::from_datum(d))),
            DatumKind::Symbol(s) => Ok(match self.lookup(*s) {
                Some(v) => Expr::LocalRef(v),
                None => Expr::GlobalRef(*s),
            }),
            DatumKind::Nil => Err(err(d.span, "empty application ()")),
            DatumKind::Pair(p) => {
                let head = &p.0;
                if let Some(s) = head.as_sym() {
                    if self.lookup(s).is_none() {
                        if let Some(e) = self.expand_form(s, d, depth)? {
                            return Ok(e);
                        }
                        if self.macros.contains_key(&s) {
                            let expanded = self.apply_macro(s, d)?;
                            return self.expand_expr(&expanded, depth + 1);
                        }
                    }
                }
                // Ordinary application.
                let items = d
                    .proper_list()
                    .ok_or_else(|| err(d.span, "improper application form"))?;
                let rator = self.expand_expr(&items[0], depth)?;
                let rands = items[1..]
                    .iter()
                    .map(|a| self.expand_expr(a, depth))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Expr::Call {
                    rator: Box::new(rator),
                    rands,
                })
            }
        }
    }

    /// Handles the built-in special forms; `Ok(None)` means "not a special
    /// form" (fall through to macros / application).
    fn expand_form(
        &mut self,
        s: Sym,
        d: &Datum,
        depth: usize,
    ) -> Result<Option<Expr>, CompileError> {
        let items: Vec<Datum> = match d.proper_list() {
            Some(v) => v,
            None => return Ok(None),
        };
        let span = d.span;
        let form = s.name();
        let e = match form {
            "quote" => {
                expect_len(&items, 2, span, "quote")?;
                Expr::Quote(Value::from_datum(&items[1]))
            }
            "if" => {
                if items.len() != 3 && items.len() != 4 {
                    return Err(err(span, "if: expected 2 or 3 subforms"));
                }
                let test = self.expand_expr(&items[1], depth)?;
                let conseq = self.expand_expr(&items[2], depth)?;
                let altern = if items.len() == 4 {
                    self.expand_expr(&items[3], depth)?
                } else {
                    Expr::void()
                };
                Expr::If(Box::new(test), Box::new(conseq), Box::new(altern))
            }
            "begin" => {
                if items.len() == 1 {
                    Expr::void()
                } else {
                    let es = items[1..]
                        .iter()
                        .map(|e| self.expand_expr(e, depth))
                        .collect::<Result<Vec<_>, _>>()?;
                    seq(es)
                }
            }
            "lambda" | "λ" => {
                if items.len() < 3 {
                    return Err(err(span, "lambda: missing body"));
                }
                return Ok(Some(self.expand_lambda(
                    "lambda",
                    &items[1],
                    &items[2..],
                    depth,
                )?));
            }
            "set!" => {
                expect_len(&items, 3, span, "set!")?;
                let name = items[1]
                    .as_sym()
                    .ok_or_else(|| err(items[1].span, "set!: expected variable"))?;
                let value = self.expand_expr(&items[2], depth)?;
                match self.lookup(name) {
                    Some(v) => Expr::SetLocal(v, Box::new(value)),
                    None => Expr::SetGlobal(name, Box::new(value)),
                }
            }
            "define" => {
                return Err(err(span, "define: not allowed in expression position"));
            }
            "let" => {
                // Named let?
                if items.len() >= 3 && items[1].as_sym().is_some() {
                    let name = items[1].as_sym().unwrap();
                    let bindings = parse_bindings(&items[2])?;
                    let (vars, inits): (Vec<Datum>, Vec<Datum>) = bindings.into_iter().unzip();
                    // (letrec ([name (lambda (vars...) body...)]) (name inits...))
                    let lam = {
                        let mut l = vec![Datum::symbol("lambda"), Datum::list(vars)];
                        l.extend(items[3..].iter().cloned());
                        Datum::list(l)
                    };
                    let bind = Datum::list([Datum::from_sym(name), lam]);
                    let mut call = vec![Datum::from_sym(name)];
                    call.extend(inits);
                    let rewritten = Datum::list([
                        Datum::symbol("letrec"),
                        Datum::list([bind]),
                        Datum::list(call),
                    ]);
                    return Ok(Some(self.expand_expr(&rewritten, depth + 1)?));
                }
                if items.len() < 3 {
                    return Err(err(span, "let: missing body"));
                }
                let bindings = parse_bindings(&items[1])?;
                let inits = bindings
                    .iter()
                    .map(|(_, i)| self.expand_expr(i, depth))
                    .collect::<Result<Vec<_>, _>>()?;
                self.scopes.push(HashMap::new());
                let vars: Vec<VarId> = bindings
                    .iter()
                    .map(|(n, _)| {
                        let s = n.as_sym().expect("checked by parse_bindings");
                        self.bind(s)
                    })
                    .collect();
                let body = self.expand_body(&items[2..], depth);
                self.scopes.pop();
                Expr::Let {
                    bindings: vars.into_iter().zip(inits).collect(),
                    body: Box::new(body?),
                }
            }
            "let*" => {
                if items.len() < 3 {
                    return Err(err(span, "let*: missing body"));
                }
                let bindings = parse_bindings(&items[1])?;
                // Nest.
                let mut scopes_pushed = 0;
                let mut acc: Vec<(VarId, Expr)> = Vec::new();
                #[allow(unused_assignments)]
                let mut result: Result<Expr, CompileError> = Err(err(span, "unreachable"));
                'build: {
                    for (n, i) in &bindings {
                        let init = match self.expand_expr(i, depth) {
                            Ok(e) => e,
                            Err(e) => {
                                result = Err(e);
                                break 'build;
                            }
                        };
                        self.scopes.push(HashMap::new());
                        scopes_pushed += 1;
                        let v = self.bind(n.as_sym().expect("checked"));
                        acc.push((v, init));
                    }
                    if scopes_pushed == 0 {
                        self.scopes.push(HashMap::new());
                        scopes_pushed = 1;
                    }
                    result = self.expand_body(&items[2..], depth);
                }
                for _ in 0..scopes_pushed {
                    self.scopes.pop();
                }
                let body = result?;
                // Sequential semantics preserved because each binding was
                // expanded before the next scope was pushed.
                let mut out = body;
                for (v, init) in acc.into_iter().rev() {
                    out = Expr::Let {
                        bindings: vec![(v, init)],
                        body: Box::new(out),
                    };
                }
                out
            }
            "letrec" | "letrec*" => {
                if items.len() < 3 {
                    return Err(err(span, "letrec: missing body"));
                }
                let bindings = parse_bindings(&items[1])?;
                self.scopes.push(HashMap::new());
                let vars: Vec<VarId> = bindings
                    .iter()
                    .map(|(n, _)| self.bind(n.as_sym().expect("checked")))
                    .collect();
                let result = (|| {
                    let inits = bindings
                        .iter()
                        .map(|(_, i)| self.expand_expr(i, depth))
                        .collect::<Result<Vec<_>, _>>()?;
                    let body = self.expand_body(&items[2..], depth)?;
                    Ok::<_, CompileError>((inits, body))
                })();
                self.scopes.pop();
                let (inits, body) = result?;
                letrec_expr(vars, inits, body)
            }
            "cond" => return Ok(Some(self.expand_cond(&items[1..], depth)?)),
            "case" => return Ok(Some(self.expand_case(&items, span, depth)?)),
            "and" => {
                let mut out = Expr::Quote(Value::Bool(true));
                for test in items[1..].iter().rev() {
                    let t = self.expand_expr(test, depth)?;
                    if matches!(out, Expr::Quote(Value::Bool(true))) {
                        out = t;
                    } else {
                        out = Expr::If(
                            Box::new(t),
                            Box::new(out),
                            Box::new(Expr::Quote(Value::Bool(false))),
                        );
                    }
                }
                out
            }
            "or" => {
                let mut out = Expr::Quote(Value::Bool(false));
                for test in items[1..].iter().rev() {
                    let t = self.expand_expr(test, depth)?;
                    if matches!(out, Expr::Quote(Value::Bool(false))) {
                        out = t;
                    } else {
                        // (let ([t test]) (if t t rest))
                        self.scopes.push(HashMap::new());
                        let v = self.bind(sym("$or-tmp"));
                        self.scopes.pop();
                        out = Expr::Let {
                            bindings: vec![(v, t)],
                            body: Box::new(Expr::If(
                                Box::new(Expr::LocalRef(v)),
                                Box::new(Expr::LocalRef(v)),
                                Box::new(out),
                            )),
                        };
                    }
                }
                out
            }
            "when" => {
                if items.len() < 3 {
                    return Err(err(span, "when: missing body"));
                }
                let test = self.expand_expr(&items[1], depth)?;
                let body = items[2..]
                    .iter()
                    .map(|e| self.expand_expr(e, depth))
                    .collect::<Result<Vec<_>, _>>()?;
                Expr::If(Box::new(test), Box::new(seq(body)), Box::new(Expr::void()))
            }
            "unless" => {
                if items.len() < 3 {
                    return Err(err(span, "unless: missing body"));
                }
                let test = self.expand_expr(&items[1], depth)?;
                let body = items[2..]
                    .iter()
                    .map(|e| self.expand_expr(e, depth))
                    .collect::<Result<Vec<_>, _>>()?;
                Expr::If(Box::new(test), Box::new(Expr::void()), Box::new(seq(body)))
            }
            "do" => return Ok(Some(self.expand_do(&items, span, depth)?)),
            "quasiquote" => {
                expect_len(&items, 2, span, "quasiquote")?;
                let rewritten = expand_quasiquote(&items[1], 1);
                return Ok(Some(self.expand_expr(&rewritten, depth + 1)?));
            }
            // Effects surface forms: pure rewrites onto the prelude's
            // `$reset`/`$shift`/`$with-handler`/`$perform` procedures
            // (crates/effects/src/effects.scm), which in turn bottom out
            // in `%call-with-prompt`/`%abort`/
            // `%call-with-composable-continuation` plus one continuation
            // mark per handler activation.
            "reset" => {
                if items.len() < 2 {
                    return Err(err(span, "reset: missing body"));
                }
                let rewritten = Datum::list([Datum::symbol("$reset"), thunk_of(&items[1..])]);
                return Ok(Some(self.expand_expr(&rewritten, depth + 1)?));
            }
            "shift" => {
                if items.len() < 3 {
                    return Err(err(span, "shift: expected (shift k body ...)"));
                }
                let k = items[1]
                    .as_sym()
                    .ok_or_else(|| err(items[1].span, "shift: expected continuation name"))?;
                let mut lam = vec![Datum::symbol("lambda"), Datum::list([Datum::from_sym(k)])];
                lam.extend(items[2..].iter().cloned());
                let rewritten = Datum::list([Datum::symbol("$shift"), Datum::list(lam)]);
                return Ok(Some(self.expand_expr(&rewritten, depth + 1)?));
            }
            "perform" => {
                if items.len() < 2 {
                    return Err(err(span, "perform: expected (perform op arg ...)"));
                }
                let op = items[1]
                    .as_sym()
                    .ok_or_else(|| err(items[1].span, "perform: expected operation symbol"))?;
                let mut argl = vec![Datum::symbol("list")];
                argl.extend(items[2..].iter().cloned());
                let rewritten = Datum::list([
                    Datum::symbol("$perform"),
                    Datum::list([Datum::symbol("quote"), Datum::from_sym(op)]),
                    Datum::list(argl),
                ]);
                return Ok(Some(self.expand_expr(&rewritten, depth + 1)?));
            }
            "handle" | "handle-shallow" => {
                if items.len() < 2 {
                    return Err(err(
                        span,
                        format!("{form}: expected ({form} body clause ...)"),
                    ));
                }
                let (clauses, ret) = parse_handler_clauses(form, &items[2..])?;
                let rewritten = Datum::list([
                    Datum::symbol("$with-handler"),
                    Datum::bool(form == "handle"),
                    clauses,
                    ret,
                    thunk_of(std::slice::from_ref(&items[1])),
                ]);
                return Ok(Some(self.expand_expr(&rewritten, depth + 1)?));
            }
            "handler" | "handler-shallow" => {
                let (clauses, ret) = parse_handler_clauses(form, &items[1..])?;
                let rewritten = Datum::list([
                    Datum::symbol("$make-handler"),
                    Datum::bool(form == "handler"),
                    clauses,
                    ret,
                ]);
                return Ok(Some(self.expand_expr(&rewritten, depth + 1)?));
            }
            "async" => {
                if items.len() < 2 {
                    return Err(err(span, "async: missing body"));
                }
                let rewritten = Datum::list([Datum::symbol("async-spawn"), thunk_of(&items[1..])]);
                return Ok(Some(self.expand_expr(&rewritten, depth + 1)?));
            }
            "with-continuation-mark" => {
                expect_len(&items, 4, span, "with-continuation-mark")?;
                let key = self.expand_expr(&items[1], depth)?;
                let val = self.expand_expr(&items[2], depth)?;
                let body = self.expand_expr(&items[3], depth)?;
                Expr::Wcm {
                    key: Box::new(key),
                    val: Box::new(val),
                    body: Box::new(body),
                }
            }
            _ => return Ok(None),
        };
        Ok(Some(e))
    }

    fn expand_lambda(
        &mut self,
        name: &str,
        formals: &Datum,
        body: &[Datum],
        depth: usize,
    ) -> Result<Expr, CompileError> {
        self.scopes.push(HashMap::new());
        let mut params = Vec::new();
        let mut rest = None;
        match &formals.kind {
            DatumKind::Symbol(s) => rest = Some(self.bind(*s)),
            DatumKind::Nil | DatumKind::Pair(_) => {
                let mut it = formals.list_iter();
                for p in it.by_ref() {
                    match p.as_sym() {
                        Some(s) => params.push(self.bind(s)),
                        None => {
                            self.scopes.pop();
                            return Err(err(p.span, "lambda: expected parameter name"));
                        }
                    }
                }
                match &it.tail().kind {
                    DatumKind::Nil => {}
                    DatumKind::Symbol(s) => rest = Some(self.bind(*s)),
                    _ => {
                        self.scopes.pop();
                        return Err(err(formals.span, "lambda: malformed parameter list"));
                    }
                }
            }
            _ => {
                self.scopes.pop();
                return Err(err(formals.span, "lambda: malformed parameter list"));
            }
        }
        let body = self.expand_body(body, depth);
        self.scopes.pop();
        Ok(Expr::Lambda(std::rc::Rc::new(LambdaExpr {
            name: name.to_owned(),
            params,
            rest,
            body: body?,
        })))
    }

    /// Expands a body with leading internal definitions (letrec* scope).
    fn expand_body(&mut self, forms: &[Datum], depth: usize) -> Result<Expr, CompileError> {
        // Split off leading defines.
        let mut defines: Vec<(Sym, Datum)> = Vec::new();
        let mut rest = forms;
        while let Some(first) = rest.first() {
            let is_define = first
                .as_pair()
                .and_then(|(h, _)| h.as_sym())
                .is_some_and(|s| s.name() == "define" && self.lookup(s).is_none());
            if !is_define {
                break;
            }
            defines.push(self.parse_define(first)?);
            rest = &rest[1..];
        }
        if rest.is_empty() {
            return Err(err(
                forms.first().map_or(Span::SYNTH, |d| d.span),
                "body has no expressions",
            ));
        }
        if defines.is_empty() {
            let es = rest
                .iter()
                .map(|e| self.expand_expr(e, depth))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(seq(es));
        }
        // letrec* over the defines.
        self.scopes.push(HashMap::new());
        let vars: Vec<VarId> = defines.iter().map(|(n, _)| self.bind(*n)).collect();
        let result = (|| {
            let inits = defines
                .iter()
                .map(|(_, i)| self.expand_expr(i, depth))
                .collect::<Result<Vec<_>, _>>()?;
            let es = rest
                .iter()
                .map(|e| self.expand_expr(e, depth))
                .collect::<Result<Vec<_>, _>>()?;
            Ok::<_, CompileError>((inits, seq(es)))
        })();
        self.scopes.pop();
        let (inits, body) = result?;
        Ok(letrec_expr(vars, inits, body))
    }

    fn expand_cond(&mut self, clauses: &[Datum], depth: usize) -> Result<Expr, CompileError> {
        let Some((first, rest)) = clauses.split_first() else {
            return Ok(Expr::void());
        };
        let parts = first
            .proper_list()
            .ok_or_else(|| err(first.span, "cond: malformed clause"))?;
        if parts.is_empty() {
            return Err(err(first.span, "cond: empty clause"));
        }
        if parts[0].is_sym("else") {
            let es = parts[1..]
                .iter()
                .map(|e| self.expand_expr(e, depth))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(seq(es));
        }
        let test = self.expand_expr(&parts[0], depth)?;
        let else_part = self.expand_cond(rest, depth)?;
        if parts.len() == 1 {
            // (cond (test) ...) — value of test if true.
            self.scopes.push(HashMap::new());
            let v = self.bind(sym("$cond-tmp"));
            self.scopes.pop();
            return Ok(Expr::Let {
                bindings: vec![(v, test)],
                body: Box::new(Expr::If(
                    Box::new(Expr::LocalRef(v)),
                    Box::new(Expr::LocalRef(v)),
                    Box::new(else_part),
                )),
            });
        }
        if parts.len() == 3 && parts[1].is_sym("=>") {
            let recv = self.expand_expr(&parts[2], depth)?;
            self.scopes.push(HashMap::new());
            let v = self.bind(sym("$cond-tmp"));
            self.scopes.pop();
            return Ok(Expr::Let {
                bindings: vec![(v, test)],
                body: Box::new(Expr::If(
                    Box::new(Expr::LocalRef(v)),
                    Box::new(Expr::Call {
                        rator: Box::new(recv),
                        rands: vec![Expr::LocalRef(v)],
                    }),
                    Box::new(else_part),
                )),
            });
        }
        let body = parts[1..]
            .iter()
            .map(|e| self.expand_expr(e, depth))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Expr::If(
            Box::new(test),
            Box::new(seq(body)),
            Box::new(else_part),
        ))
    }

    fn expand_case(
        &mut self,
        items: &[Datum],
        span: Span,
        depth: usize,
    ) -> Result<Expr, CompileError> {
        if items.len() < 3 {
            return Err(err(span, "case: missing clauses"));
        }
        let scrutinee = self.expand_expr(&items[1], depth)?;
        self.scopes.push(HashMap::new());
        let v = self.bind(sym("$case-tmp"));
        self.scopes.pop();
        let mut out = Expr::void();
        for clause in items[2..].iter().rev() {
            let parts = clause
                .proper_list()
                .ok_or_else(|| err(clause.span, "case: malformed clause"))?;
            if parts.is_empty() {
                return Err(err(clause.span, "case: empty clause"));
            }
            let body = parts[1..]
                .iter()
                .map(|e| self.expand_expr(e, depth))
                .collect::<Result<Vec<_>, _>>()?;
            if parts[0].is_sym("else") {
                out = seq(body);
            } else {
                let data = parts[0]
                    .proper_list()
                    .ok_or_else(|| err(parts[0].span, "case: expected datum list"))?;
                let test = Expr::Call {
                    rator: Box::new(Expr::GlobalRef(sym("memv"))),
                    rands: vec![
                        Expr::LocalRef(v),
                        Expr::Quote(Value::from_datum(&Datum::list(data))),
                    ],
                };
                out = Expr::If(Box::new(test), Box::new(seq(body)), Box::new(out));
            }
        }
        Ok(Expr::Let {
            bindings: vec![(v, scrutinee)],
            body: Box::new(out),
        })
    }

    fn expand_do(
        &mut self,
        items: &[Datum],
        span: Span,
        depth: usize,
    ) -> Result<Expr, CompileError> {
        if items.len() < 3 {
            return Err(err(span, "do: malformed"));
        }
        // (do ((var init step)...) (test result...) command...)
        let specs = items[1]
            .proper_list()
            .ok_or_else(|| err(items[1].span, "do: expected bindings"))?;
        let mut vars = Vec::new();
        let mut inits = Vec::new();
        let mut steps = Vec::new();
        for spec in &specs {
            let parts = spec
                .proper_list()
                .ok_or_else(|| err(spec.span, "do: malformed binding"))?;
            if parts.len() < 2 || parts.len() > 3 {
                return Err(err(spec.span, "do: malformed binding"));
            }
            vars.push(parts[0].clone());
            inits.push(parts[1].clone());
            steps.push(if parts.len() == 3 {
                parts[2].clone()
            } else {
                parts[0].clone()
            });
        }
        let exit = items[2]
            .proper_list()
            .ok_or_else(|| err(items[2].span, "do: expected exit clause"))?;
        if exit.is_empty() {
            return Err(err(items[2].span, "do: empty exit clause"));
        }
        // Rewrite to a named let.
        let loop_name = Datum::from_sym(Sym::gensym("$do-loop"));
        let mut recur = vec![loop_name.clone()];
        recur.extend(steps);
        let result = if exit.len() > 1 {
            let mut b = vec![Datum::symbol("begin")];
            b.extend(exit[1..].iter().cloned());
            Datum::list(b)
        } else {
            Datum::list([Datum::symbol("void")])
        };
        let mut commands = vec![Datum::symbol("begin")];
        commands.extend(items[3..].iter().cloned());
        commands.push(Datum::list(recur));
        let body = Datum::list([
            Datum::symbol("if"),
            exit[0].clone(),
            result,
            Datum::list(commands),
        ]);
        let bindings: Vec<Datum> = vars
            .into_iter()
            .zip(inits)
            .map(|(v, i)| Datum::list([v, i]))
            .collect();
        let rewritten = Datum::list([Datum::symbol("let"), loop_name, Datum::list(bindings), body]);
        self.expand_expr(&rewritten, depth + 1)
    }

    // ------------------------------------------------------------------
    // syntax-rules
    // ------------------------------------------------------------------

    fn apply_macro(&mut self, name: Sym, d: &Datum) -> Result<Datum, CompileError> {
        let def = self.macros.get(&name).expect("caller checked").clone();
        for (pattern, template) in &def.rules {
            let mut bindings = HashMap::new();
            if match_pattern_top(pattern, d, &def.literals, &mut bindings) {
                return Ok(instantiate(template, &bindings));
            }
        }
        Err(err(d.span, format!("no matching syntax rule for {name}")))
    }
}

/// `(lambda () body ...)`.
fn thunk_of(body: &[Datum]) -> Datum {
    let mut l = vec![Datum::symbol("lambda"), Datum::list([])];
    l.extend(body.iter().cloned());
    Datum::list(l)
}

/// Parses `handle`/`handler` clauses `[(op arg ... k) body ...]` into a
/// `(list (list 'op (lambda (arg ... k) body ...)) ...)` datum plus the
/// return-clause lambda (`#f` when absent). The clause head's last
/// parameter binds the resume continuation; the head symbol `return` is
/// reserved for the return clause, whose single parameter binds the
/// handled body's normal result.
fn parse_handler_clauses(form: &str, clauses: &[Datum]) -> Result<(Datum, Datum), CompileError> {
    let mut listed = vec![Datum::symbol("list")];
    let mut ret = Datum::bool(false);
    let mut saw_ret = false;
    for c in clauses {
        let parts = c.proper_list().ok_or_else(|| {
            err(
                c.span,
                format!("{form}: expected [(op arg ... k) body ...]"),
            )
        })?;
        if parts.len() < 2 {
            return Err(err(c.span, format!("{form}: clause needs a body")));
        }
        let head = parts[0].proper_list().ok_or_else(|| {
            err(
                parts[0].span,
                format!("{form}: clause head must be (op arg ... k)"),
            )
        })?;
        let op = head.first().and_then(Datum::as_sym).ok_or_else(|| {
            err(
                parts[0].span,
                format!("{form}: clause head must name an operation"),
            )
        })?;
        let mut lam = vec![
            Datum::symbol("lambda"),
            Datum::list(head[1..].iter().cloned()),
        ];
        lam.extend(parts[1..].iter().cloned());
        let lam = Datum::list(lam);
        if op.name() == "return" {
            if head.len() != 2 {
                return Err(err(
                    parts[0].span,
                    format!("{form}: return clause takes exactly one binder"),
                ));
            }
            if saw_ret {
                return Err(err(c.span, format!("{form}: duplicate return clause")));
            }
            saw_ret = true;
            ret = lam;
        } else {
            if head.len() < 2 {
                return Err(err(
                    parts[0].span,
                    format!(
                        "{form}: clause must bind the resume continuation as its last parameter"
                    ),
                ));
            }
            listed.push(Datum::list([
                Datum::symbol("list"),
                Datum::list([Datum::symbol("quote"), Datum::from_sym(op)]),
                lam,
            ]));
        }
    }
    Ok((Datum::list(listed), ret))
}

fn expect_len(items: &[Datum], n: usize, span: Span, who: &str) -> Result<(), CompileError> {
    if items.len() == n {
        Ok(())
    } else {
        Err(err(span, format!("{who}: expected {} subforms", n - 1)))
    }
}

fn seq(mut es: Vec<Expr>) -> Expr {
    if es.len() == 1 {
        es.pop().unwrap()
    } else {
        Expr::Seq(es)
    }
}

fn parse_bindings(d: &Datum) -> Result<Vec<(Datum, Datum)>, CompileError> {
    let list = d
        .proper_list()
        .ok_or_else(|| err(d.span, "expected binding list"))?;
    let mut out = Vec::new();
    for b in list {
        let parts = b
            .proper_list()
            .filter(|p| p.len() == 2 && p[0].as_sym().is_some())
            .ok_or_else(|| err(b.span, "expected (name init) binding"))?;
        out.push((parts[0].clone(), parts[1].clone()));
    }
    Ok(out)
}

/// `letrec*` encoding: bind all names to void, then assign in order.
/// Assignment conversion later boxes the mutated variables.
fn letrec_expr(vars: Vec<VarId>, inits: Vec<Expr>, body: Expr) -> Expr {
    let mut seq_items: Vec<Expr> = vars
        .iter()
        .zip(inits)
        .map(|(v, i)| Expr::SetLocal(*v, Box::new(i)))
        .collect();
    seq_items.push(body);
    Expr::Let {
        bindings: vars.into_iter().map(|v| (v, Expr::void())).collect(),
        body: Box::new(Expr::Seq(seq_items)),
    }
}

/// Rewrites quasiquote syntax into `cons`/`append`/`quote` calls.
fn expand_quasiquote(d: &Datum, level: usize) -> Datum {
    match &d.kind {
        DatumKind::Pair(p) => {
            if d.is_sym_head("unquote") {
                let arg = datum_car(&p.1).expect("unquote arg");
                if level == 1 {
                    return arg;
                }
                return list3(
                    "list",
                    Datum::list([Datum::symbol("quote"), Datum::symbol("unquote")]),
                    expand_quasiquote(&arg, level - 1),
                );
            }
            if d.is_sym_head("quasiquote") {
                let arg = datum_car(&p.1).expect("quasiquote arg");
                return list3(
                    "list",
                    Datum::list([Datum::symbol("quote"), Datum::symbol("quasiquote")]),
                    expand_quasiquote(&arg, level + 1),
                );
            }
            // Check for splicing in head position.
            if let Some((head, tail)) = d.as_pair() {
                if head.is_sym_head("unquote-splicing") && level == 1 {
                    let spliced = datum_car(head.as_pair().unwrap().1).expect("splice arg");
                    return list3("append", spliced, expand_quasiquote(tail, level));
                }
                return list3(
                    "cons",
                    expand_quasiquote(head, level),
                    expand_quasiquote(tail, level),
                );
            }
            unreachable!("pair handled above")
        }
        DatumKind::Vector(items) => {
            let lst = expand_quasiquote(&Datum::list(items.iter().cloned()), level);
            Datum::list([Datum::symbol("list->vector"), lst])
        }
        _ => Datum::list([Datum::symbol("quote"), d.clone()]),
    }
}

fn datum_car(d: &Datum) -> Option<Datum> {
    d.as_pair().map(|(h, _)| h.clone())
}

fn list3(f: &str, a: Datum, b: Datum) -> Datum {
    Datum::list([Datum::symbol(f), a, b])
}

trait SymHead {
    fn is_sym_head(&self, name: &str) -> bool;
}

impl SymHead for Datum {
    fn is_sym_head(&self, name: &str) -> bool {
        self.as_pair().is_some_and(|(h, _)| h.is_sym(name))
    }
}

// ----------------------------------------------------------------------
// Pattern matching for syntax-rules
// ----------------------------------------------------------------------

/// A value bound to a pattern variable.
#[derive(Debug, Clone)]
enum MatchVal {
    One(Datum),
    Many(Vec<MatchVal>),
}

type Bindings = HashMap<Sym, MatchVal>;

/// Matches a top-level rule pattern against a use; the first element of
/// the pattern (the macro keyword position) is ignored.
fn match_pattern_top(pattern: &Datum, d: &Datum, literals: &[Sym], out: &mut Bindings) -> bool {
    match (pattern.as_pair(), d.as_pair()) {
        (Some((_, prest)), Some((_, drest))) => match_pattern(prest, drest, literals, out),
        _ => false,
    }
}

fn is_ellipsis(d: &Datum) -> bool {
    d.is_sym("...")
}

fn match_pattern(pattern: &Datum, d: &Datum, literals: &[Sym], out: &mut Bindings) -> bool {
    match &pattern.kind {
        DatumKind::Symbol(s) => {
            if s.name() == "_" {
                return true;
            }
            if literals.contains(s) {
                return d.as_sym() == Some(*s);
            }
            out.insert(*s, MatchVal::One(d.clone()));
            true
        }
        DatumKind::Nil => matches!(d.kind, DatumKind::Nil),
        DatumKind::Pair(p) => {
            // Ellipsis pattern: (sub ... . tailpats)
            if let Some((maybe_ellipsis, after)) = p.1.as_pair() {
                if is_ellipsis(maybe_ellipsis) {
                    let sub = &p.0;
                    // Collect fixed tail patterns after the ellipsis.
                    let tail_pats: Vec<&Datum> = after.list_iter().collect();
                    let tail_tail = {
                        let mut it = after.list_iter();
                        for _ in it.by_ref() {}
                        it.tail().clone()
                    };
                    // Gather input elements.
                    let mut elems: Vec<Datum> = Vec::new();
                    let mut it = d.list_iter();
                    for e in it.by_ref() {
                        elems.push(e.clone());
                    }
                    let input_tail = it.tail().clone();
                    if elems.len() < tail_pats.len() {
                        return false;
                    }
                    let split = elems.len() - tail_pats.len();
                    // Match the repeated part.
                    let vars = pattern_vars(sub, literals);
                    let mut collected: HashMap<Sym, Vec<MatchVal>> =
                        vars.iter().map(|v| (*v, Vec::new())).collect();
                    for e in &elems[..split] {
                        let mut sub_out = Bindings::new();
                        if !match_pattern(sub, e, literals, &mut sub_out) {
                            return false;
                        }
                        for v in &vars {
                            collected.get_mut(v).expect("var collected").push(
                                sub_out
                                    .get(v)
                                    .cloned()
                                    .unwrap_or(MatchVal::One(Datum::nil())),
                            );
                        }
                    }
                    for (v, vals) in collected {
                        out.insert(v, MatchVal::Many(vals));
                    }
                    // Match the fixed tail.
                    for (tp, e) in tail_pats.iter().zip(&elems[split..]) {
                        if !match_pattern(tp, e, literals, out) {
                            return false;
                        }
                    }
                    return match_pattern(&tail_tail, &input_tail, literals, out);
                }
            }
            match d.as_pair() {
                Some((dh, dt)) => {
                    match_pattern(&p.0, dh, literals, out) && match_pattern(&p.1, dt, literals, out)
                }
                None => false,
            }
        }
        _ => datum_literal_eq(pattern, d),
    }
}

fn datum_literal_eq(a: &Datum, b: &Datum) -> bool {
    cm_sexpr::write_datum(a) == cm_sexpr::write_datum(b)
}

/// The pattern variables bound by `pattern`.
fn pattern_vars(pattern: &Datum, literals: &[Sym]) -> Vec<Sym> {
    let mut out = Vec::new();
    fn go(p: &Datum, literals: &[Sym], out: &mut Vec<Sym>) {
        match &p.kind {
            DatumKind::Symbol(s)
                if s.name() != "_" && s.name() != "..." && !literals.contains(s) =>
            {
                out.push(*s);
            }
            DatumKind::Pair(pp) => {
                go(&pp.0, literals, out);
                go(&pp.1, literals, out);
            }
            _ => {}
        }
    }
    go(pattern, literals, &mut out);
    out
}

/// Instantiates a template with pattern bindings.
fn instantiate(template: &Datum, bindings: &Bindings) -> Datum {
    match &template.kind {
        DatumKind::Symbol(s) => match bindings.get(s) {
            Some(MatchVal::One(d)) => d.clone(),
            // A bare many-binding without ellipsis: leave as symbol (an
            // error in strict syntax-rules; harmless here).
            _ => template.clone(),
        },
        DatumKind::Pair(p) => {
            // (sub ... . rest)
            if let Some((maybe_ellipsis, after)) = p.1.as_pair() {
                if is_ellipsis(maybe_ellipsis) {
                    let sub = &p.0;
                    let vars = template_vars(sub, bindings);
                    let n = vars
                        .iter()
                        .filter_map(|v| match bindings.get(v) {
                            Some(MatchVal::Many(vals)) => Some(vals.len()),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(0);
                    let mut items = Vec::new();
                    for i in 0..n {
                        let mut sub_bindings = bindings.clone();
                        for v in &vars {
                            if let Some(MatchVal::Many(vals)) = bindings.get(v) {
                                if let Some(val) = vals.get(i) {
                                    sub_bindings.insert(*v, val.clone());
                                }
                            }
                        }
                        items.push(instantiate(sub, &sub_bindings));
                    }
                    let rest = instantiate(after, bindings);
                    let mut out = rest;
                    for item in items.into_iter().rev() {
                        out = Datum::cons(item, out);
                    }
                    return out;
                }
            }
            Datum::cons(instantiate(&p.0, bindings), instantiate(&p.1, bindings))
        }
        _ => template.clone(),
    }
}

fn template_vars(template: &Datum, bindings: &Bindings) -> Vec<Sym> {
    let mut out = Vec::new();
    fn go(t: &Datum, bindings: &Bindings, out: &mut Vec<Sym>) {
        match &t.kind {
            DatumKind::Symbol(s) if bindings.contains_key(s) => {
                out.push(*s);
            }
            DatumKind::Pair(p) => {
                go(&p.0, bindings, out);
                go(&p.1, bindings, out);
            }
            _ => {}
        }
    }
    go(template, bindings, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_sexpr::parse_str;

    fn expand_one(src: &str) -> Expr {
        let data = parse_str(src).unwrap();
        let mut ex = Expander::new();
        let forms = ex.expand_program(&data).unwrap();
        match forms.into_iter().last().unwrap() {
            TopForm::Expr(e) => e,
            TopForm::Define(_, e) => e,
        }
    }

    #[test]
    fn atoms_expand_to_quotes_and_refs() {
        assert!(matches!(expand_one("42"), Expr::Quote(_)));
        assert!(matches!(expand_one("foo"), Expr::GlobalRef(_)));
    }

    #[test]
    fn lambda_binds_locals() {
        let e = expand_one("(lambda (x) x)");
        let Expr::Lambda(l) = e else {
            panic!("not a lambda")
        };
        assert_eq!(l.params.len(), 1);
        assert!(matches!(l.body, Expr::LocalRef(v) if v == l.params[0]));
    }

    #[test]
    fn rest_parameters() {
        let e = expand_one("(lambda (a . rest) rest)");
        let Expr::Lambda(l) = e else {
            panic!("not a lambda")
        };
        assert_eq!(l.params.len(), 1);
        assert!(l.rest.is_some());
    }

    #[test]
    fn let_and_shadowing() {
        let e = expand_one("(let ([x 1]) (let ([x 2]) x))");
        let Expr::Let { body, .. } = e else {
            panic!("not a let")
        };
        let Expr::Let { bindings, body } = *body else {
            panic!("not nested let")
        };
        assert!(matches!(*body, Expr::LocalRef(v) if v == bindings[0].0));
    }

    #[test]
    fn named_let_becomes_letrec() {
        let e = expand_one("(let loop ([i 0]) (if (< i 10) (loop (+ i 1)) i))");
        // Shape: Let { [loop = void], Seq[SetLocal(loop, lambda), Call(loop, 0)] }
        assert!(matches!(e, Expr::Let { .. }));
    }

    #[test]
    fn cond_with_arrow() {
        let e = expand_one("(cond [(assq 'a lst) => cdr] [else #f])");
        assert!(matches!(e, Expr::Let { .. }));
    }

    #[test]
    fn wcm_is_a_special_form() {
        let e = expand_one("(with-continuation-mark 'k 1 (f))");
        assert!(matches!(e, Expr::Wcm { .. }));
    }

    #[test]
    fn quasiquote_rewrites_to_constructors() {
        let e = expand_one("`(a ,b ,@c)");
        // (cons 'a (append c '()))-ish: a Call at top.
        assert!(matches!(e, Expr::Call { .. }));
    }

    #[test]
    fn define_syntax_swap() {
        let src = r#"
            (define-syntax my-if
              (syntax-rules () ((_ c t e) (if c t e))))
            (my-if #t 1 2)
        "#;
        let e = expand_one(src);
        assert!(matches!(e, Expr::If(..)));
    }

    #[test]
    fn syntax_rules_ellipsis() {
        let src = r#"
            (define-syntax my-list
              (syntax-rules () ((_ x ...) (list x ...))))
            (my-list 1 2 3)
        "#;
        let e = expand_one(src);
        let Expr::Call { rands, .. } = e else {
            panic!("not a call")
        };
        assert_eq!(rands.len(), 3);
    }

    #[test]
    fn syntax_rules_nested_ellipsis_let_like() {
        let src = r#"
            (define-syntax my-let
              (syntax-rules () ((_ ((n v) ...) body) ((lambda (n ...) body) v ...))))
            (my-let ((a 1) (b 2)) (+ a b))
        "#;
        let e = expand_one(src);
        let Expr::Call { rator, rands } = e else {
            panic!("not a call")
        };
        assert!(matches!(*rator, Expr::Lambda(_)));
        assert_eq!(rands.len(), 2);
    }

    #[test]
    fn ellipsis_with_fixed_tail() {
        let src = r#"
            (define-syntax last-of
              (syntax-rules () ((_ x ... y) y)))
            (last-of 1 2 3)
        "#;
        let e = expand_one(src);
        assert!(matches!(e, Expr::Quote(Value::Fixnum(3))));
    }

    #[test]
    fn macro_shadowed_by_local_binding() {
        let src = r#"
            (define-syntax m (syntax-rules () ((_ x) (list x))))
            (let ([m car]) (m '(1 2)))
        "#;
        let e = expand_one(src);
        // m is a local, so (m ...) is a plain call.
        let Expr::Let { body, .. } = e else {
            panic!("not let")
        };
        assert!(matches!(*body, Expr::Call { .. }));
    }

    #[test]
    fn internal_defines_are_letrec() {
        let e = expand_one("(lambda () (define x 1) (define (f) x) (f))");
        let Expr::Lambda(l) = e else {
            panic!("not lambda")
        };
        assert!(matches!(&l.body, Expr::Let { .. }));
    }

    #[test]
    fn do_loop_expands() {
        let e = expand_one("(do ([i 0 (+ i 1)] [acc 0 (+ acc i)]) ((= i 5) acc))");
        assert!(matches!(e, Expr::Let { .. }));
    }

    #[test]
    fn errors_on_bad_syntax() {
        let data = parse_str("(if)").unwrap();
        assert!(Expander::new().expand_program(&data).is_err());
        let data = parse_str("(lambda (1) x)").unwrap();
        assert!(Expander::new().expand_program(&data).is_err());
        let data = parse_str("()").unwrap();
        assert!(Expander::new().expand_program(&data).is_err());
    }

    #[test]
    fn case_expands_to_memv() {
        let e = expand_one("(case x [(1 2) 'small] [else 'big])");
        assert!(matches!(e, Expr::Let { .. }));
    }
}
