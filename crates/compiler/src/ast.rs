//! The core intermediate representation.
//!
//! The expander lowers surface syntax into this small language; every later
//! pass (cp0, attachment recognition, codegen) is `Expr` → `Expr` or
//! `Expr` → bytecode. Variables are alpha-renamed to unique [`VarId`]s by
//! the expander, so passes never worry about shadowing.

use std::fmt;
use std::rc::Rc;

use cm_sexpr::Sym;
use cm_vm::{PrimOp, Value};

/// A unique local-variable id assigned by the expander.
pub type VarId = u32;

/// A core-language expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A literal value.
    Quote(Value),
    /// Reference to a local (lexical) variable.
    LocalRef(VarId),
    /// Reference to a global variable.
    GlobalRef(Sym),
    /// Two- or three-armed conditional (the else arm defaults to void).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Sequencing; value of the last expression.
    Seq(Vec<Expr>),
    /// Parallel `let`.
    Let {
        /// The bindings, evaluated left to right.
        bindings: Vec<(VarId, Expr)>,
        /// Body, in tail position.
        body: Box<Expr>,
    },
    /// A procedure.
    Lambda(Rc<LambdaExpr>),
    /// Local assignment (eliminated by assignment conversion).
    SetLocal(VarId, Box<Expr>),
    /// Global assignment / definition.
    SetGlobal(Sym, Box<Expr>),
    /// Procedure call.
    Call {
        /// Operator.
        rator: Box<Expr>,
        /// Operands.
        rands: Vec<Expr>,
    },
    /// A recognized primitive application (inlined by codegen).
    PrimApp {
        /// The operation.
        op: PrimOp,
        /// Operands.
        rands: Vec<Expr>,
    },
    /// `with-continuation-mark` before lowering (a special form so the
    /// compiler can apply §7.2/§7.3 before committing to a representation).
    Wcm {
        /// Mark key.
        key: Box<Expr>,
        /// Mark value.
        val: Box<Expr>,
        /// Body, in tail position.
        body: Box<Expr>,
    },
    /// Recognized `call-setting-continuation-attachment` with an immediate
    /// thunk: evaluate `val`, attach it, run `body` in tail position.
    SetAttachment {
        /// The attachment value.
        val: Box<Expr>,
        /// The (inlined) thunk body.
        body: Box<Expr>,
    },
    /// Recognized `call-getting/-consuming-continuation-attachment` with an
    /// immediate one-argument lambda.
    GetAttachment {
        /// Default when no attachment is present.
        dflt: Box<Expr>,
        /// The lambda's parameter, bound to the attachment (or default).
        var: VarId,
        /// The (inlined) lambda body.
        body: Box<Expr>,
        /// Whether to also remove the attachment.
        consume: bool,
    },
    /// Recognized `current-continuation-attachments` — reads the marks
    /// register.
    CurrentAttachments,
}

/// A lambda's pieces.
#[derive(Debug, Clone)]
pub struct LambdaExpr {
    /// Diagnostic name.
    pub name: String,
    /// Required parameters.
    pub params: Vec<VarId>,
    /// Rest parameter, if variadic.
    pub rest: Option<VarId>,
    /// Body, in tail position.
    pub body: Expr,
}

/// A top-level program form.
#[derive(Debug, Clone)]
pub enum TopForm {
    /// `(define name expr)`.
    Define(Sym, Expr),
    /// A top-level expression.
    Expr(Expr),
}

impl Expr {
    /// Shorthand for a void constant.
    pub fn void() -> Expr {
        Expr::Quote(Value::Void)
    }

    /// Whether evaluating this expression can have side effects, capture
    /// control, or diverge. Conservative: `false` means provably pure.
    pub fn is_pure(&self) -> bool {
        match self {
            Expr::Quote(_) | Expr::LocalRef(_) | Expr::Lambda(_) | Expr::CurrentAttachments => true,
            // A global read can fault on unbound variables; still treat it
            // as pure for dead-code purposes (matching cp0's behavior of
            // assuming bound globals).
            Expr::GlobalRef(_) => true,
            Expr::If(t, c, a) => t.is_pure() && c.is_pure() && a.is_pure(),
            Expr::Seq(es) => es.iter().all(Expr::is_pure),
            Expr::Let { bindings, body } => {
                bindings.iter().all(|(_, e)| e.is_pure()) && body.is_pure()
            }
            Expr::PrimApp { op, rands } => {
                prim_is_effect_free(*op) && rands.iter().all(Expr::is_pure)
            }
            _ => false,
        }
    }

    /// §7.4: whether this expression is *attachment-transparent* — no
    /// observer could distinguish an extra continuation frame around it.
    /// Conservative. Calls are opaque (the callee might inspect its
    /// immediate attachment); attachment operations are opaque by
    /// definition; recognized primitives defer to the per-`PrimOp`
    /// transparency table in `cm_vm::prim_attachment_transparent`, the
    /// single source of truth shared with the interprocedural mark-flow
    /// analysis.
    pub fn attachment_transparent(&self) -> bool {
        match self {
            Expr::Quote(_) | Expr::LocalRef(_) | Expr::GlobalRef(_) | Expr::Lambda(_) => true,
            Expr::If(t, c, a) => {
                t.attachment_transparent()
                    && c.attachment_transparent()
                    && a.attachment_transparent()
            }
            Expr::Seq(es) => es.iter().all(Expr::attachment_transparent),
            Expr::Let { bindings, body } => {
                bindings.iter().all(|(_, e)| e.attachment_transparent())
                    && body.attachment_transparent()
            }
            Expr::SetLocal(_, e) | Expr::SetGlobal(_, e) => e.attachment_transparent(),
            Expr::PrimApp { op, rands } => {
                cm_vm::prim_attachment_transparent(*op)
                    && rands.iter().all(Expr::attachment_transparent)
            }
            Expr::Call { .. }
            | Expr::Wcm { .. }
            | Expr::SetAttachment { .. }
            | Expr::GetAttachment { .. }
            | Expr::CurrentAttachments => false,
        }
    }

    /// Counts the references to local `v` (for inlining decisions).
    pub fn count_refs(&self, v: VarId) -> usize {
        let mut n = 0;
        self.walk(&mut |e| {
            if let Expr::LocalRef(x) = e {
                if *x == v {
                    n += 1;
                }
            }
        });
        n
    }

    /// Whether local `v` is ever assigned.
    pub fn mutates(&self, v: VarId) -> bool {
        let mut hit = false;
        self.walk(&mut |e| {
            if let Expr::SetLocal(x, _) = e {
                if *x == v {
                    hit = true;
                }
            }
        });
        hit
    }

    /// Pre-order traversal over this expression and all subexpressions,
    /// including lambda bodies.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Quote(_) | Expr::LocalRef(_) | Expr::GlobalRef(_) | Expr::CurrentAttachments => {}
            Expr::If(a, b, c) => {
                a.walk(f);
                b.walk(f);
                c.walk(f);
            }
            Expr::Seq(es) => es.iter().for_each(|e| e.walk(f)),
            Expr::Let { bindings, body } => {
                bindings.iter().for_each(|(_, e)| e.walk(f));
                body.walk(f);
            }
            Expr::Lambda(l) => l.body.walk(f),
            Expr::SetLocal(_, e) | Expr::SetGlobal(_, e) => e.walk(f),
            Expr::Call { rator, rands } => {
                rator.walk(f);
                rands.iter().for_each(|e| e.walk(f));
            }
            Expr::PrimApp { rands, .. } => rands.iter().for_each(|e| e.walk(f)),
            Expr::Wcm { key, val, body } => {
                key.walk(f);
                val.walk(f);
                body.walk(f);
            }
            Expr::SetAttachment { val, body } => {
                val.walk(f);
                body.walk(f);
            }
            Expr::GetAttachment { dflt, body, .. } => {
                dflt.walk(f);
                body.walk(f);
            }
        }
    }
}

/// Whether a primitive has no side effects (safe to fold or drop).
pub fn prim_is_effect_free(op: PrimOp) -> bool {
    !matches!(
        op,
        PrimOp::SetCar | PrimOp::SetCdr | PrimOp::VectorSet | PrimOp::SetBox
    )
}

/// Whether a primitive is safe to constant-fold at compile time (pure and
/// deterministic on its arguments).
pub fn prim_is_foldable(op: PrimOp) -> bool {
    // Allocation primitives (cons, make-vector, box) are effect-free but
    // folding them would share what should be fresh mutable structure.
    prim_is_effect_free(op)
        && !matches!(
            op,
            PrimOp::Cons | PrimOp::MakeVector | PrimOp::BoxNew | PrimOp::VectorRef | PrimOp::Unbox
        )
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_of_leaves() {
        assert!(Expr::Quote(Value::fixnum(1)).is_pure());
        assert!(Expr::LocalRef(0).is_pure());
        assert!(!Expr::Call {
            rator: Box::new(Expr::GlobalRef(cm_sexpr::sym("f"))),
            rands: vec![]
        }
        .is_pure());
    }

    #[test]
    fn prim_purity() {
        assert!(prim_is_effect_free(PrimOp::Add));
        assert!(!prim_is_effect_free(PrimOp::SetCar));
        assert!(prim_is_foldable(PrimOp::Add));
        assert!(!prim_is_foldable(PrimOp::Cons));
    }

    #[test]
    fn transparency_blocks_on_calls_and_attachments() {
        let call = Expr::Call {
            rator: Box::new(Expr::GlobalRef(cm_sexpr::sym("f"))),
            rands: vec![],
        };
        assert!(!call.attachment_transparent());
        let prim = Expr::PrimApp {
            op: PrimOp::Add,
            rands: vec![Expr::Quote(Value::fixnum(1))],
        };
        assert!(prim.attachment_transparent());
        assert!(!Expr::CurrentAttachments.attachment_transparent());
    }

    #[test]
    fn ref_counting_and_mutation() {
        let e = Expr::Seq(vec![
            Expr::LocalRef(3),
            Expr::SetLocal(3, Box::new(Expr::LocalRef(3))),
        ]);
        assert_eq!(e.count_refs(3), 2);
        assert!(e.mutates(3));
        assert!(!e.mutates(4));
    }
}
