//! Expression-level support for the interprocedural mark-flow pass.
//!
//! The bytecode-level analysis in `cm_analysis::markflow` cannot see which
//! mark keys a program sets or observes generically, because lowering a
//! `with-continuation-mark` itself emits attachment instructions (the
//! consume-and-merge protocol) that would poison any bytecode-level
//! detection. So the compiler collects key facts *before* lowering:
//!
//! * every `(with-continuation-mark 'k v body)` with a literal symbol key
//!   contributes `k` to the set-key universe;
//! * any syntactic access to generic attachment state — the raw attachment
//!   API, `current-continuation-marks`, mark-set iterators, or an
//!   unrecognized reference to an observer primitive — makes *every* key
//!   observable (`observes_all`), because a reified mark set can be
//!   inspected for any key later.
//!
//! Key-specific observers (`continuation-mark-set-first`,
//! `continuation-mark-set->list`) are deliberately *not* in the generic
//! list: the bytecode analysis models them precisely through
//! [`cm_analysis::markflow::TrustedObservers`] summaries.
//!
//! [`elide_dead_wcms`] then rewrites `(with-continuation-mark 'k v body)`
//! to `(begin v body)` for keys the whole-program analysis proved dead.
//! The rewrite is sound because (a) lowering would consume the current
//! immediate attachment *before* `v` runs and merge `k` into it — a
//! key-specific observer of any *other* key sees the same frame contents
//! either way, and a generic observer forces `observes_all`, emptying the
//! dead set; and (b) the guard requires `v` to be attachment-transparent,
//! so evaluating it outside the consume/merge protocol is unobservable.

use std::collections::HashSet;
use std::rc::Rc;

use cm_analysis::markflow::ExprFacts;
use cm_sexpr::Sym;
use cm_vm::Value;

use crate::ast::{Expr, LambdaExpr, TopForm};

/// Global names whose mere mention gives the program generic access to
/// attachment or mark-set state. References to any of these set
/// [`ExprFacts::observes_all`]; recognized (lowered) uses of the raw
/// attachment API show up as `Set/GetAttachment`/`CurrentAttachments`
/// nodes and are caught structurally instead.
const GENERIC_OBSERVER_NAMES: &[&str] = &[
    // Raw attachment API (§6), unrecognized references.
    "call-setting-continuation-attachment",
    "call-getting-continuation-attachment",
    "call-consuming-continuation-attachment",
    "current-continuation-attachments",
    "$call-setting-attachment",
    "$call-getting-attachment",
    "$call-consuming-attachment",
    "$cont-attachments",
    // Mark-set reification: once a set is first-class it can be probed
    // for any key.
    "current-continuation-marks",
    "continuation-marks",
    "continuation-mark-set->iterator",
    // Takes a callback, so the key arg alone does not bound what the
    // callback observes.
    "call-with-immediate-continuation-mark",
    // Native observer backends (prelude internals; user programs that
    // name them get the conservative treatment).
    "$marks-first",
    "$marks->list",
    "$eager-first",
    "$eager-marks",
    "$eager-immediate",
    "$eager-all-marks",
    "$eager-mark-set!",
];

/// Collects the pre-lowering key facts for a whole program.
pub fn collect_expr_facts(forms: &[TopForm]) -> ExprFacts {
    let generic: HashSet<Sym> = GENERIC_OBSERVER_NAMES
        .iter()
        .map(|n| cm_sexpr::sym(n))
        .collect();
    let mut facts = ExprFacts::default();
    let mut seen: HashSet<Sym> = HashSet::new();
    for form in forms {
        let e = match form {
            TopForm::Define(_, e) => e,
            TopForm::Expr(e) => e,
        };
        e.walk(&mut |x| match x {
            Expr::Wcm { key, .. } => {
                if let Expr::Quote(Value::Sym(s)) = &**key {
                    if seen.insert(*s) {
                        facts.set_keys.push(*s);
                    }
                } else {
                    // A computed key could be anything; treat every set
                    // key as potentially aliased by it.
                    facts.observes_all = true;
                }
            }
            Expr::GlobalRef(s) if generic.contains(s) => {
                facts.observes_all = true;
            }
            Expr::SetAttachment { .. } | Expr::GetAttachment { .. } | Expr::CurrentAttachments => {
                facts.observes_all = true
            }
            _ => {}
        });
    }
    facts
}

/// Rewrites `(with-continuation-mark 'k v body)` to `(begin v body)` for
/// every `k` in `dead`, provided `v` is attachment-transparent. Returns
/// the rewritten forms and the number of elisions performed.
pub fn elide_dead_wcms(forms: Vec<TopForm>, dead: &HashSet<Sym>) -> (Vec<TopForm>, usize) {
    let mut count = 0;
    let forms = forms
        .into_iter()
        .map(|f| match f {
            TopForm::Define(n, e) => TopForm::Define(n, elide(e, dead, &mut count)),
            TopForm::Expr(e) => TopForm::Expr(elide(e, dead, &mut count)),
        })
        .collect();
    (forms, count)
}

fn elide_box(mut e: Box<Expr>, dead: &HashSet<Sym>, count: &mut usize) -> Box<Expr> {
    // Reuse the allocation instead of round-tripping through a fresh box.
    let inner = std::mem::replace(&mut *e, Expr::Seq(Vec::new()));
    *e = elide(inner, dead, count);
    e
}

fn elide(e: Expr, dead: &HashSet<Sym>, count: &mut usize) -> Expr {
    match e {
        Expr::Quote(_) | Expr::LocalRef(_) | Expr::GlobalRef(_) | Expr::CurrentAttachments => e,
        Expr::If(t, c, a) => Expr::If(
            elide_box(t, dead, count),
            elide_box(c, dead, count),
            elide_box(a, dead, count),
        ),
        Expr::Seq(es) => Expr::Seq(es.into_iter().map(|x| elide(x, dead, count)).collect()),
        Expr::Let { bindings, body } => Expr::Let {
            bindings: bindings
                .into_iter()
                .map(|(v, x)| (v, elide(x, dead, count)))
                .collect(),
            body: elide_box(body, dead, count),
        },
        Expr::Lambda(l) => Expr::Lambda(Rc::new(LambdaExpr {
            name: l.name.clone(),
            params: l.params.clone(),
            rest: l.rest,
            body: elide(l.body.clone(), dead, count),
        })),
        Expr::SetLocal(v, x) => Expr::SetLocal(v, elide_box(x, dead, count)),
        Expr::SetGlobal(s, x) => Expr::SetGlobal(s, elide_box(x, dead, count)),
        Expr::Call { rator, rands } => Expr::Call {
            rator: elide_box(rator, dead, count),
            rands: rands.into_iter().map(|x| elide(x, dead, count)).collect(),
        },
        Expr::PrimApp { op, rands } => Expr::PrimApp {
            op,
            rands: rands.into_iter().map(|x| elide(x, dead, count)).collect(),
        },
        Expr::Wcm { key, val, body } => {
            let key = elide_box(key, dead, count);
            let val = elide_box(val, dead, count);
            let body = elide_box(body, dead, count);
            let is_dead = matches!(&*key, Expr::Quote(Value::Sym(s)) if dead.contains(s));
            if is_dead && val.attachment_transparent() {
                *count += 1;
                // Keep `val` for its value-producing effects (it is
                // attachment-transparent, not necessarily pure).
                Expr::Seq(vec![*val, *body])
            } else {
                Expr::Wcm { key, val, body }
            }
        }
        Expr::SetAttachment { val, body } => Expr::SetAttachment {
            val: elide_box(val, dead, count),
            body: elide_box(body, dead, count),
        },
        Expr::GetAttachment {
            dflt,
            var,
            body,
            consume,
        } => Expr::GetAttachment {
            dflt: elide_box(dflt, dead, count),
            var,
            body: elide_box(body, dead, count),
            consume,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wcm(key: &str, val: Expr, body: Expr) -> Expr {
        Expr::Wcm {
            key: Box::new(Expr::Quote(Value::symbol(key))),
            val: Box::new(val),
            body: Box::new(body),
        }
    }

    #[test]
    fn collects_literal_keys_once() {
        let forms = vec![
            TopForm::Expr(wcm(
                "a",
                Expr::Quote(Value::fixnum(1)),
                Expr::Quote(Value::fixnum(2)),
            )),
            TopForm::Expr(wcm(
                "a",
                Expr::Quote(Value::fixnum(3)),
                Expr::Quote(Value::fixnum(4)),
            )),
            TopForm::Expr(wcm(
                "b",
                Expr::Quote(Value::fixnum(5)),
                Expr::Quote(Value::fixnum(6)),
            )),
        ];
        let facts = collect_expr_facts(&forms);
        assert_eq!(facts.set_keys.len(), 2);
        assert!(!facts.observes_all);
    }

    #[test]
    fn computed_key_or_generic_observer_forces_observes_all() {
        let computed = vec![TopForm::Expr(Expr::Wcm {
            key: Box::new(Expr::LocalRef(1)),
            val: Box::new(Expr::Quote(Value::fixnum(1))),
            body: Box::new(Expr::Quote(Value::fixnum(2))),
        })];
        assert!(collect_expr_facts(&computed).observes_all);

        let generic = vec![TopForm::Expr(Expr::GlobalRef(cm_sexpr::sym(
            "current-continuation-marks",
        )))];
        assert!(collect_expr_facts(&generic).observes_all);

        let specific = vec![TopForm::Expr(Expr::GlobalRef(cm_sexpr::sym(
            "continuation-mark-set-first",
        )))];
        assert!(
            !collect_expr_facts(&specific).observes_all,
            "key-specific observers are handled by trusted summaries, not syntactically"
        );
    }

    #[test]
    fn elides_dead_key_keeping_val_and_body() {
        let dead: HashSet<Sym> = [cm_sexpr::sym("d")].into_iter().collect();
        let e = wcm(
            "d",
            Expr::Quote(Value::fixnum(1)),
            wcm(
                "live",
                Expr::Quote(Value::fixnum(2)),
                Expr::Quote(Value::fixnum(3)),
            ),
        );
        let (forms, n) = elide_dead_wcms(vec![TopForm::Expr(e)], &dead);
        assert_eq!(n, 1);
        let TopForm::Expr(Expr::Seq(parts)) = &forms[0] else {
            panic!("expected Seq, got {forms:?}");
        };
        assert_eq!(parts.len(), 2);
        assert!(matches!(&parts[1], Expr::Wcm { .. }), "live wcm kept");
    }

    #[test]
    fn opaque_val_blocks_elision() {
        let dead: HashSet<Sym> = [cm_sexpr::sym("d")].into_iter().collect();
        let e = Expr::Wcm {
            key: Box::new(Expr::Quote(Value::symbol("d"))),
            val: Box::new(Expr::Call {
                rator: Box::new(Expr::GlobalRef(cm_sexpr::sym("f"))),
                rands: vec![],
            }),
            body: Box::new(Expr::Quote(Value::fixnum(1))),
        };
        let (forms, n) = elide_dead_wcms(vec![TopForm::Expr(e)], &dead);
        assert_eq!(n, 0);
        assert!(matches!(&forms[0], TopForm::Expr(Expr::Wcm { .. })));
    }
}
