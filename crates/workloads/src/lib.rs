//! Workloads for the paper's evaluation (§8): microbenchmarks for
//! attachments (figure 4) and marks (figure 5), the `ctak` and `triple`
//! continuation benchmarks (§8.1, figure 1, §8.2), a classic Scheme
//! benchmark suite (figure 2), the contract microbenchmark and five
//! synthetic applications (§8.4).
//!
//! Each workload is a Scheme source bundle plus an entry procedure that
//! takes one scale argument and returns a deterministic checksum, so the
//! same definition serves correctness tests (small scale, fixed expected
//! value) and benchmarks (large scale, timed).
//!
//! # Examples
//!
//! ```
//! use cm_workloads::{attachment_micros, load_into, run_scaled};
//! let mut engine = cm_core::Engine::new(Default::default());
//! let w = &attachment_micros()[0];
//! load_into(&mut engine, w);
//! let v = run_scaled(&mut engine, w, 10).unwrap();
//! assert_eq!(v.display_string(), "done");
//! ```

use cm_core::{Engine, EngineError};
use cm_vm::Value;

/// A benchmark workload: a Scheme source bundle with a 1-argument entry
/// procedure.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name matching the paper's benchmark tables.
    pub name: &'static str,
    /// Scheme source defining the entry (and its helpers).
    pub source: &'static str,
    /// Name of the entry procedure; called as `(entry n)`.
    pub entry: &'static str,
    /// A small-scale check: `(entry small_n)` must print this.
    pub small_n: i64,
    /// Expected `write` output at `small_n` (deterministic across
    /// engines); `None` for workloads checked elsewhere.
    pub expected: Option<&'static str>,
    /// Default scale for timed runs (tuned for an interpreter, not the
    /// paper's native-code iteration counts).
    pub bench_n: i64,
}

const MICRO_ATTACH: &str = include_str!("scm/micro_attachments.scm");
const MICRO_MARKS: &str = include_str!("scm/micro_marks.scm");
const CTAK: &str = include_str!("scm/ctak.scm");
const TRIPLE_NATIVE: &str = include_str!("scm/triple_native.scm");
const TRIPLE_DPJS: &str = include_str!("scm/triple_dpjs.scm");
const TRIPLE_K: &str = include_str!("scm/triple_k.scm");
const GABRIEL: &str = include_str!("scm/gabriel.scm");
const CONTRACT: &str = include_str!("scm/contract.scm");
const APPS: &str = include_str!("scm/apps.scm");
const BOYER: &str = include_str!("scm/boyer.scm");
const MARKFLOW: &str = include_str!("scm/markflow.scm");
const EFFECTS: &str = include_str!("scm/effects.scm");

/// Loads a workload's source into an engine (idempotent per engine).
///
/// # Panics
///
/// Panics if the bundled source fails to compile — a build defect.
pub fn load_into(engine: &mut Engine, w: &Workload) {
    engine
        .eval(w.source)
        .unwrap_or_else(|e| panic!("workload {} failed to load: {e}", w.name));
}

/// Runs a workload's entry at the given scale.
///
/// # Errors
///
/// Propagates any engine error.
pub fn run_scaled(engine: &mut Engine, w: &Workload, n: i64) -> Result<Value, EngineError> {
    engine.call_global(w.entry, vec![Value::fixnum(n)])
}

macro_rules! workloads {
    ($(($name:expr, $src:expr, $entry:expr, $small:expr, $expected:expr, $bench:expr)),* $(,)?) => {
        &[$(Workload {
            name: $name,
            source: $src,
            entry: $entry,
            small_n: $small,
            expected: $expected,
            bench_n: $bench,
        }),*]
    };
}

/// Figure 4: raw continuation-attachment microbenchmarks
/// (builtin vs. the figure-3 imitation).
pub fn attachment_micros() -> &'static [Workload] {
    workloads![
        (
            "base-loop",
            MICRO_ATTACH,
            "base-loop-bench",
            10,
            Some("done"),
            300_000
        ),
        (
            "base-callcc-loop",
            MICRO_ATTACH,
            "base-callcc-loop-bench",
            10,
            Some("done"),
            60_000
        ),
        (
            "base-deep",
            MICRO_ATTACH,
            "base-deep-bench",
            100,
            Some("100"),
            100_000
        ),
        (
            "base-callcc-deep",
            MICRO_ATTACH,
            "base-callcc-deep-bench",
            100,
            Some("100"),
            60_000
        ),
        (
            "set-loop",
            MICRO_ATTACH,
            "set-loop-bench",
            10,
            Some("done"),
            150_000
        ),
        (
            "get-loop",
            MICRO_ATTACH,
            "get-loop-bench",
            10,
            Some("done"),
            150_000
        ),
        (
            "get-has-loop",
            MICRO_ATTACH,
            "get-has-loop-bench",
            10,
            Some("done"),
            100_000
        ),
        (
            "get-set-loop",
            MICRO_ATTACH,
            "get-set-loop-bench",
            10,
            Some("done"),
            100_000
        ),
        (
            "consume-set-loop",
            MICRO_ATTACH,
            "consume-set-loop-bench",
            10,
            Some("done"),
            100_000
        ),
        (
            "set-nontail-notail",
            MICRO_ATTACH,
            "set-nontail-notail-bench",
            100,
            Some("100"),
            50_000
        ),
        (
            "set-tail-notail",
            MICRO_ATTACH,
            "set-tail-notail-bench",
            100,
            Some("100"),
            50_000
        ),
        (
            "set-nontail-tail",
            MICRO_ATTACH,
            "set-nontail-tail-bench",
            100,
            Some("100"),
            50_000
        ),
        (
            "loop-arg-call",
            MICRO_ATTACH,
            "loop-arg-call-bench",
            10,
            Some("done"),
            100_000
        ),
        (
            "loop-arg-prim",
            MICRO_ATTACH,
            "loop-arg-prim-bench",
            10,
            Some("done"),
            100_000
        ),
    ]
}

/// Figure 5: continuation-mark microbenchmarks (Racket CS vs. the old
/// Racket eager mark-stack model).
pub fn mark_micros() -> &'static [Workload] {
    workloads![
        (
            "base-loop",
            MICRO_MARKS,
            "mbase-loop-bench",
            10,
            Some("done"),
            300_000
        ),
        (
            "base-deep",
            MICRO_MARKS,
            "mbase-deep-bench",
            100,
            Some("100"),
            100_000
        ),
        (
            "base-arg-call-loop",
            MICRO_MARKS,
            "mbase-arg-call-loop-bench",
            10,
            Some("done"),
            150_000
        ),
        (
            "set-loop",
            MICRO_MARKS,
            "mset-loop-bench",
            10,
            Some("done"),
            60_000
        ),
        (
            "set-nontail-prim",
            MICRO_MARKS,
            "mset-nontail-prim-bench",
            100,
            Some("100"),
            30_000
        ),
        (
            "set-tail-notail",
            MICRO_MARKS,
            "mset-tail-notail-bench",
            100,
            Some("100"),
            30_000
        ),
        (
            "set-nontail-tail",
            MICRO_MARKS,
            "mset-nontail-tail-bench",
            100,
            Some("100"),
            30_000
        ),
        (
            "set-arg-call-loop",
            MICRO_MARKS,
            "mset-arg-call-loop-bench",
            10,
            Some("done"),
            50_000
        ),
        (
            "set-arg-prim-loop",
            MICRO_MARKS,
            "mset-arg-prim-loop-bench",
            10,
            Some("done"),
            50_000
        ),
        (
            "first-none-loop",
            MICRO_MARKS,
            "mfirst-none-loop-bench",
            10,
            Some("done"),
            100_000
        ),
        (
            "first-some-loop",
            MICRO_MARKS,
            "mfirst-some-loop-bench",
            10,
            Some("done"),
            100_000
        ),
        (
            "first-deep-loop",
            MICRO_MARKS,
            "mfirst-deep-loop-bench",
            10,
            Some("0"),
            50_000
        ),
        (
            "immed-none-loop",
            MICRO_MARKS,
            "mimmed-none-loop-bench",
            10,
            Some("done"),
            60_000
        ),
        (
            "immed-some-loop",
            MICRO_MARKS,
            "mimmed-some-loop-bench",
            10,
            Some("done"),
            50_000
        ),
    ]
}

/// §8.1: the ctak continuation benchmark. The scale argument selects a
/// size (0 = small, 1 = medium, 2 = the traditional 18/12/6).
pub fn ctak() -> &'static [Workload] {
    workloads![("ctak", CTAK, "ctak-bench", 0, Some("5"), 1)]
}

/// Figure 1 / §8.2: the triple delimited-continuation benchmark in its
/// three implementation strategies.
pub fn triple() -> &'static [Workload] {
    workloads![
        (
            "triple-native",
            TRIPLE_NATIVE,
            "triple-native",
            30,
            Some("91"),
            200
        ),
        (
            "triple-dpjs",
            TRIPLE_DPJS,
            "triple-dpjs",
            30,
            Some("91"),
            200
        ),
        ("triple-k", TRIPLE_K, "triple-k", 30, Some("91"), 200),
    ]
}

/// Figure 2: the classic Scheme benchmark suite (no marks involved).
pub fn gabriel() -> &'static [Workload] {
    workloads![
        ("tak", GABRIEL, "tak-bench", 1, Some("4"), 20),
        ("takl", GABRIEL, "takl-bench", 1, Some("3"), 12),
        ("cpstak", GABRIEL, "cpstak-bench", 1, Some("4"), 15),
        ("fib", GABRIEL, "fib-bench", 10, Some("55"), 22),
        ("ack", GABRIEL, "ack-bench", 3, Some("9"), 10),
        ("div", GABRIEL, "div-bench", 2, Some("400"), 300),
        ("deriv", GABRIEL, "deriv-bench", 2, Some("122"), 6_000),
        ("dderiv", GABRIEL, "dderiv-bench", 2, Some("122"), 5_000),
        ("destruct", GABRIEL, "destruct-bench", 1, Some("4560"), 300),
        ("nqueens", GABRIEL, "nqueens-bench", 6, Some("4"), 8),
        ("sort1", GABRIEL, "sort1-bench", 2, None, 60),
        ("fft", GABRIEL, "fft-bench", 1, None, 30),
        ("primes", GABRIEL, "primes-bench", 100, Some("25"), 40_000),
        ("collatz-q", GABRIEL, "collatz-bench", 10, Some("67"), 4_000),
        ("boyer", BOYER, "boyer-bench", 2, Some("8"), 100),
    ]
}

/// §8.4: the contract-checking microbenchmark (unchecked/checked).
pub fn contract() -> &'static [Workload] {
    workloads![
        (
            "unchecked",
            CONTRACT,
            "contract-unchecked-bench",
            10,
            Some("10"),
            100_000
        ),
        (
            "checked",
            CONTRACT,
            "contract-checked-bench",
            10,
            Some("10"),
            40_000
        ),
    ]
}

/// §8.4: the five synthetic applications.
pub fn applications() -> &'static [Workload] {
    workloads![
        (
            "ActivityLog import",
            APPS,
            "app-activity-log",
            10,
            None,
            4_000
        ),
        ("Xsmith cish", APPS, "app-xsmith", 10, None, 2_000),
        ("Megaparsack JSON", APPS, "app-json", 10, None, 2_500),
        ("Markdown", APPS, "app-markdown", 10, None, 6_000),
        ("OL1V3R gauss", APPS, "app-smt", 5, None, 150),
    ]
}

/// Mark-heavy shapes the §7.2 local categorization cannot optimize —
/// the measurement group for the eighth (mark-flow) engine config.
pub fn markflow_micros() -> &'static [Workload] {
    workloads![
        (
            "observed-key",
            MARKFLOW,
            "mf-observed-bench",
            10,
            Some("120"),
            200_000
        ),
        (
            "dead-key",
            MARKFLOW,
            "mf-dead-bench",
            10,
            Some("120"),
            200_000
        ),
        (
            "mixed-keys",
            MARKFLOW,
            "mf-mixed-bench",
            10,
            Some("175"),
            150_000
        ),
    ]
}

/// The libseff-shaped effect-handler workloads (pipes, handler-chain
/// depth sweep, request storm) plus the canonical-handler stress shapes
/// (state, generators, multi-shot amb, shift/reset) — all running on
/// the `crates/effects` library shipped in the prelude.
pub fn effects() -> &'static [Workload] {
    workloads![
        ("pipes", EFFECTS, "eff-pipes-bench", 8, Some("60"), 400),
        ("chain", EFFECTS, "eff-chain-bench", 12, Some("312"), 400),
        ("storm", EFFECTS, "eff-storm-bench", 6, Some("451"), 120),
        ("state", EFFECTS, "eff-state-bench", 20, Some("190"), 3_000),
        ("gen", EFFECTS, "eff-gen-bench", 12, Some("90"), 800),
        ("amb", EFFECTS, "eff-amb-bench", 6, Some("112"), 13),
        ("deep", EFFECTS, "eff-deep-bench", 20, Some("1990"), 600),
        ("shift", EFFECTS, "eff-shift-bench", 10, Some("120"), 4_000),
    ]
}

/// Every workload group, for exhaustive validation.
pub fn all_groups() -> Vec<(&'static str, &'static [Workload])> {
    vec![
        ("attachment-micros", attachment_micros()),
        ("mark-micros", mark_micros()),
        ("ctak", ctak()),
        ("triple", triple()),
        ("gabriel", gabriel()),
        ("contract", contract()),
        ("applications", applications()),
        ("markflow-micros", markflow_micros()),
        ("effects", effects()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::EngineConfig;

    #[test]
    fn every_workload_loads_and_passes_its_small_check() {
        for (group, ws) in all_groups() {
            let mut engine = Engine::new(EngineConfig::full());
            for w in ws {
                load_into(&mut engine, w);
                let v = run_scaled(&mut engine, w, w.small_n)
                    .unwrap_or_else(|e| panic!("{group}/{}: {e}", w.name));
                if let Some(expected) = w.expected {
                    assert_eq!(
                        v.write_string(),
                        expected,
                        "{group}/{} at n={}",
                        w.name,
                        w.small_n
                    );
                }
            }
        }
    }

    #[test]
    fn triple_variants_agree_with_direct_count() {
        // Count (i, j, k) with 0 <= i <= j <= k <= n and i+j+k = n.
        fn direct(n: i64) -> i64 {
            let mut count = 0;
            for i in 0..=n {
                for j in i..=n {
                    let k = n - i - j;
                    if k >= j && k <= n {
                        count += 1;
                    }
                }
            }
            count
        }
        let mut engine = Engine::new(EngineConfig::full());
        for w in triple() {
            load_into(&mut engine, w);
            for n in [0, 1, 5, 17, 30] {
                let v = run_scaled(&mut engine, w, n).unwrap();
                assert!(
                    v.eq_value(&Value::fixnum(direct(n))),
                    "{} at n={n}: got {v}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn checksums_agree_across_engine_variants() {
        // The checksum of every workload must be engine-independent.
        let configs = [
            ("full", EngineConfig::full()),
            ("no-1cc", EngineConfig::no_one_shot()),
            ("no-opt", EngineConfig::no_attachment_opt()),
            ("no-prim", EngineConfig::no_prim_opt()),
        ];
        for (group, ws) in all_groups() {
            for w in ws {
                let mut expected: Option<String> = None;
                for (cname, config) in &configs {
                    let mut engine = Engine::new(config.clone());
                    load_into(&mut engine, w);
                    let v = run_scaled(&mut engine, w, w.small_n)
                        .unwrap_or_else(|e| panic!("{group}/{} [{cname}]: {e}", w.name));
                    let s = v.write_string();
                    match &expected {
                        None => expected = Some(s),
                        Some(e) => assert_eq!(&s, e, "{group}/{} [{cname}]", w.name),
                    }
                }
            }
        }
    }

    #[test]
    fn mark_micros_run_on_old_racket_model() {
        let mut engine = cm_core::Engine::new(EngineConfig::old_racket());
        for w in mark_micros() {
            load_into(&mut engine, w);
            let v = run_scaled(&mut engine, w, w.small_n)
                .unwrap_or_else(|e| panic!("{} (old racket): {e}", w.name));
            if let Some(expected) = w.expected {
                assert_eq!(v.write_string(), expected, "{} (old racket)", w.name);
            }
        }
    }

    #[test]
    fn attachment_micros_run_on_imitation() {
        let mut engine = cm_baseline::imitation_engine();
        for w in attachment_micros() {
            load_into(&mut engine, w);
            let v = run_scaled(&mut engine, w, w.small_n)
                .unwrap_or_else(|e| panic!("{} (imitation): {e}", w.name));
            if let Some(expected) = w.expected {
                assert_eq!(v.write_string(), expected, "{} (imitation)", w.name);
            }
        }
    }

    #[test]
    fn contract_and_apps_run_on_imitation() {
        let mut engine = cm_baseline::imitation_engine();
        for group in [contract(), applications()] {
            for w in group {
                load_into(&mut engine, w);
                run_scaled(&mut engine, w, w.small_n)
                    .unwrap_or_else(|e| panic!("{} (imitation): {e}", w.name));
            }
        }
    }
}
