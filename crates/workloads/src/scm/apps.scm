;; Five synthetic "application" workloads standing in for the paper's
;; §8.4 end-to-end programs (ActivityLog, Xsmith, Megaparsack JSON,
;; Markdown, OL1V3R). Each depends significantly on contract checking
;; and/or dynamic binding (parameters), which is the performance trait
;; the paper measures; each returns a deterministic checksum.

;; A tiny deterministic PRNG shared by the generators.
(define (lcg-next s) (modulo (+ (* s 1103515245) 12345) 2147483648))

;; ---------------------------------------------------------------------
;; 1. activity-log: import fixed-width records, accumulate statistics
;;    through contract-checked accessors (≈ ActivityLog import).
;; ---------------------------------------------------------------------

(define alog-distance
  ((contract-> pair? integer? 'alog-distance) (lambda (r) (car r))))
(define alog-heart-rate
  ((contract-> pair? integer? 'alog-hr) (lambda (r) (cadr r))))
(define alog-elevation
  ((contract-> pair? integer? 'alog-elev) (lambda (r) (caddr r))))

(define (alog-make-records n)
  (let loop ([i n] [s 42] [acc '()])
    (if (zero? i)
        acc
        (let* ([s1 (lcg-next s)] [s2 (lcg-next s1)] [s3 (lcg-next s2)])
          (loop (- i 1) s3
                (cons (list (modulo s1 2000) (modulo s2 60) (modulo s3 300))
                      acc))))))

(define (app-activity-log n)
  (let ([records (alog-make-records n)])
    (let loop ([rs records] [dist 0] [hr 0] [climb 0])
      (if (null? rs)
          (+ dist hr climb)
          (let ([r (car rs)])
            (loop (cdr rs)
                  (+ dist (alog-distance r))
                  (+ hr (alog-heart-rate r))
                  (+ climb (alog-elevation r))))))))

;; ---------------------------------------------------------------------
;; 2. xsmith-cish: a grammar-driven random program generator whose
;;    context (depth limits, type environment size) lives in dynamically
;;    scoped parameters consulted at every node (≈ Xsmith cish).
;; ---------------------------------------------------------------------

(define xs-max-depth (make-parameter 6))
(define xs-env-size (make-parameter 3))

(define (xs-gen-expr depth seed)
  (if (>= depth (xs-max-depth))
      (cons 1 (lcg-next seed))                     ; leaf: size 1
      (let* ([s (lcg-next seed)]
             [kind (modulo s 4)])
        (cond
          [(= kind 0) (cons 1 s)]                  ; literal
          [(= kind 1) (cons (+ 1 (modulo s (xs-env-size))) s)] ; var ref
          [(= kind 2)                              ; binary op
           (let* ([l (xs-gen-expr (+ depth 1) s)]
                  [r (xs-gen-expr (+ depth 1) (cdr l))])
             (cons (+ 1 (car l) (car r)) (cdr r)))]
          [else                                    ; let: deeper env
           (parameterize ([xs-env-size (+ (xs-env-size) 1)])
             (let* ([rhs (xs-gen-expr (+ depth 1) s)]
                    [body (xs-gen-expr (+ depth 1) (cdr rhs))])
               (cons (+ 2 (car rhs) (car body)) (cdr body))))]))))

(define (app-xsmith n)
  (let loop ([i n] [seed 7] [acc 0])
    (if (zero? i)
        acc
        (let ([r (parameterize ([xs-max-depth (+ 4 (modulo i 5))])
                   (xs-gen-expr 0 seed))])
          (loop (- i 1) (lcg-next (cdr r)) (+ acc (car r)))))))

;; ---------------------------------------------------------------------
;; 3. megaparsack-json: parser combinators over generated JSON text,
;;    with contract-checked combinators (≈ Megaparsack JSON).
;; ---------------------------------------------------------------------

(define (json-gen depth seed out)
  ;; Builds a JSON-ish string as a list of chars (reversed).
  (let ([s (lcg-next seed)])
    (cond
      [(or (>= depth 3) (= 0 (modulo s 3)))
       (cons (append (reverse (string->list (number->string (modulo s 100)))) out) s)]
      [(= 1 (modulo s 3))
       (let loop ([k 2] [out (cons #\[ out)] [s s])
         (if (zero? k)
             (cons (cons #\] out) s)
             (let ([r (json-gen (+ depth 1) (lcg-next s) out)])
               (loop (- k 1)
                     (if (= k 1) (car r) (cons #\, (car r)))
                     (cdr r)))))]
      [else
       (let ([r (json-gen (+ depth 1) (lcg-next s) (cons #\[ out))])
         (cons (cons #\] (car r)) (cdr r)))])))

;; The parser state is a pair (chars . count); combinators are wrapped
;; with contracts on their results.
(define jp-skip
  ((contract-> pair? pair? 'jp-skip)
   (lambda (st) (cons (cdr (car st)) (cdr st)))))

(define (jp-peek st) (if (null? (car st)) #\$ (car (car st))))

(define (jp-value st)
  (let ([c (jp-peek st)])
    (cond
      [(char=? c #\[) (jp-array (jp-skip st))]
      [(char-numeric? c) (jp-number st)]
      [else (error "json parse error at" c)])))

(define (jp-number st)
  (let loop ([st st])
    (if (char-numeric? (jp-peek st))
        (loop (cons (cdr (car st)) (+ (cdr st) 1)))
        st)))

(define (jp-array st)
  (if (char=? (jp-peek st) #\])
      (jp-skip st)
      (let loop ([st (jp-value st)])
        (cond
          [(char=? (jp-peek st) #\,) (loop (jp-value (jp-skip st)))]
          [(char=? (jp-peek st) #\]) (cons (cdr (car st)) (+ (cdr st) 10))]
          [else (error "json parse error in array")]))))

(define (app-json n)
  (let loop ([i n] [seed 11] [acc 0])
    (if (zero? i)
        acc
        (let* ([g (json-gen 0 seed '())]
               [text (reverse (car g))]
               [st (jp-value (cons text 0))])
          (loop (- i 1) (lcg-next (cdr g)) (+ acc (cdr st)))))))

;; ---------------------------------------------------------------------
;; 4. markdown: render a document tree to text, consulting style
;;    parameters per element (≈ Markdown Reference render).
;; ---------------------------------------------------------------------

(define md-emphasis (make-parameter "*"))
(define md-depth (make-parameter 0))

(define (md-gen-doc n seed)
  (if (zero? n)
      (cons '() seed)
      (let* ([s (lcg-next seed)]
             [rest (md-gen-doc (- n 1) s)]
             [node (case (modulo s 4)
                     [(0) (list 'h (modulo s 3))]
                     [(1) (list 'p (modulo s 17))]
                     [(2) (list 'em (modulo s 9))]
                     [else (list 'section (modulo s 3))])])
        (cons (cons node (car rest)) (cdr rest)))))

(define (md-render-node node)
  (case (car node)
    [(h) (+ 100 (cadr node) (md-depth))]
    [(p) (+ (string-length (md-emphasis)) (cadr node))]
    [(em) (parameterize ([md-emphasis "**"])
            (+ (string-length (md-emphasis)) (cadr node)))]
    [(section)
     (parameterize ([md-depth (+ (md-depth) 1)])
       (+ (md-depth) (cadr node)))]
    [else 0]))

(define (app-markdown n)
  (let ([doc (car (md-gen-doc n 13))])
    (fold-left (lambda (acc node) (+ acc (md-render-node node))) 0 doc)))

;; ---------------------------------------------------------------------
;; 5. ol1v3r-smt: Gaussian-elimination style solving of small integer
;;    linear systems with contract-checked pivots (≈ OL1V3R on gauss
;;    SMT problems).
;; ---------------------------------------------------------------------

(define smt-pivot
  ((contract-> integer? integer? 'smt-pivot)
   (lambda (x) (if (zero? x) 1 x))))

(define (smt-make-matrix dim seed)
  (let loop ([i (* dim (+ dim 1))] [s seed] [acc '()])
    (if (zero? i)
        (list->vector acc)
        (let ([s2 (lcg-next s)])
          (loop (- i 1) s2 (cons (- (modulo s2 19) 9) acc))))))

(define (smt-solve dim m)
  ;; Integer-preserving elimination (fraction-free), returning a checksum
  ;; of the reduced matrix modulo a prime.
  (define (mref r c) (vector-ref m (+ (* r (+ dim 1)) c)))
  (define (mset! r c v) (vector-set! m (+ (* r (+ dim 1)) c) (modulo v 1000003)))
  (let pivots ([p 0])
    (if (= p dim)
        (let sum ([r 0] [acc 0])
          (if (= r dim)
              acc
              (sum (+ r 1) (modulo (+ acc (mref r dim)) 1000003))))
        (let ([pv (smt-pivot (mref p p))])
          (let rows ([r (+ p 1)])
            (if (= r dim)
                (pivots (+ p 1))
                (let ([f (mref r p)])
                  (let cols ([c p])
                    (if (> c dim)
                        (rows (+ r 1))
                        (begin
                          (mset! r c (- (* pv (mref r c)) (* f (mref p c))))
                          (cols (+ c 1))))))))))))

(define (app-smt n)
  (let loop ([i n] [seed 17] [acc 0])
    (if (zero? i)
        acc
        (let ([m (smt-make-matrix 8 seed)])
          (loop (- i 1) (lcg-next seed)
                (modulo (+ acc (smt-solve 8 m)) 1000003))))))
