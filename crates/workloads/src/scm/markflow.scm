;; Workloads for the interprocedural mark-flow optimizer (the eighth
;; engine config). Every shape here is one the §7.2 *local*
;; categorization cannot improve — a non-tail `with-continuation-mark`
;; whose body calls a separately defined helper, forcing the paper's
;; compiler to reify the metacontinuation at each call — so any
;; reduction in reifications or attachment pushes is attributable to
;; the whole-program analysis alone.

(define (mf-leaf a b) (+ a (* b 2)))

;; Key observed by a defined (reachable) observer: the mark must stay,
;; but the helper call cannot observe it, so the optimizer replaces
;; reify-on-call with plain call + pop.
(define (mf-observe) (continuation-mark-set-first #f 'mf-depth 0))
(define (mf-observed-work n acc)
  (if (zero? n)
      acc
      (mf-observed-work (- n 1)
                        (+ 1 (with-continuation-mark 'mf-depth n
                               (mf-leaf acc n))))))
(define (mf-observed-bench n) (+ (mf-observed-work n 0) (mf-observe)))

;; Key set but never observed anywhere in the program: proven dead,
;; the whole `with-continuation-mark` is elided.
(define (mf-dead-work n acc)
  (if (zero? n)
      acc
      (mf-dead-work (- n 1)
                    (+ 1 (with-continuation-mark 'mf-unread n
                           (mf-leaf acc n))))))
(define (mf-dead-bench n) (mf-dead-work n 0))

;; One live key (read inside its extent on every iteration) and one
;; dead key in the same frame: the dead key is elided while the live
;; one keeps exact first-mark semantics.
(define (mf-probe) (continuation-mark-set-first #f 'mf-live -1))
(define (mf-mixed-work n acc)
  (if (zero? n)
      acc
      (mf-mixed-work (- n 1)
                     (+ 1 (with-continuation-mark 'mf-dead n
                            (with-continuation-mark 'mf-live n
                              (+ (mf-probe) (mf-leaf acc n))))))))
(define (mf-mixed-bench n) (mf-mixed-work n 0))
