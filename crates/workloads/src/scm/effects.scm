;; Effect-handler workloads: the libseff paper's benchmark shapes
;; (producer/consumer pipes, handler-chain depth sweeps, HTTP-ish
;; request storms) plus the canonical-handler stress shapes (state,
;; generators, multi-shot nondeterminism), all on the crates/effects
;; library that ships in the prelude. Every entry takes one scale
;; argument and returns a deterministic checksum, so the same programs
;; drive correctness (differential/torture) and benchmarking.

(define eff-mod 1000003)

(define (eff-range lo hi)
  (if (>= lo hi) '() (cons lo (eff-range (+ lo 1) hi))))

;; ---------------------------------------------------------------------
;; pipes: n messages through a 4-stage chain of async tasks connected
;; by bounded channels (the libseff producer/consumer pipe shape).
;; Every hop parks/wakes through the handler, so each message costs a
;; handful of captures and resumes.
;; ---------------------------------------------------------------------

(define (eff-pipes-bench n)
  (async-run
    (lambda ()
      (let ([first-ch (make-channel 2)]
            [stages 4])
        (async
          (do ([i 0 (+ i 1)]) ((= i n))
            (channel-send first-ch i))
          (channel-send first-ch 'eof))
        (let loop ([in first-ch] [s 0])
          (if (= s stages)
              (let recv ([acc 0])
                (let ([v (channel-recv in)])
                  (if (eq? v 'eof)
                      (modulo acc eff-mod)
                      (recv (+ acc v)))))
              (let ([out (make-channel 2)])
                (async
                  (let relay ()
                    (let ([v (channel-recv in)])
                      (if (eq? v 'eof)
                          (channel-send out 'eof)
                          (begin (channel-send out (+ v 1)) (relay))))))
                (loop out (+ s 1)))))))))

;; ---------------------------------------------------------------------
;; chain: handler-chain depth sweep. The operation is handled by the
;; outermost handler; every intervening handler forwards, so one
;; perform costs depth+1 capture/abort hops. Sweeps depths 0/2/4/8,
;; which is the libseff "handler stack depth" axis.
;; ---------------------------------------------------------------------

(define (eff-chain-run depth m)
  ($with-handler #t
    (list (list 'tick (lambda (x k) (k (+ x 1)))))
    #f
    (lambda ()
      (let nest ([i depth])
        (if (zero? i)
            (let loop ([j 0] [acc 0])
              (if (= j m)
                  acc
                  (loop (+ j 1) (+ acc ($perform 'tick (list j))))))
            ($with-handler #t
              (list (list 'other (lambda (x k) (k x))))
              #f
              (lambda () (nest (- i 1)))))))))

(define (eff-chain-bench n)
  (modulo (+ (eff-chain-run 0 n)
             (eff-chain-run 2 n)
             (eff-chain-run 4 n)
             (eff-chain-run 8 n))
          eff-mod))

;; ---------------------------------------------------------------------
;; storm: an HTTP-ish request storm. n request tasks are spawned at
;; once; each sleeps a deterministic pseudo-latency on the virtual
;; clock, yields once mid-"processing", and posts its response to a
;; bounded results channel the collector drains. The checksum folds in
;; the final virtual time, so scheduling order is part of the answer.
;; ---------------------------------------------------------------------

(define (eff-storm-bench n)
  (async-run
    (lambda ()
      (let ([results (make-channel 4)])
        (do ([i 0 (+ i 1)]) ((= i n))
          (async
            (async-sleep (modulo (* i 7) 13))
            (async-yield)
            (channel-send results (modulo (+ (* i i) i 17) 9973))))
        (let loop ([j 0] [acc 0])
          (if (= j n)
              (modulo (+ acc (* 31 (async-now))) eff-mod)
              (loop (+ j 1) (+ acc (channel-recv results)))))))))

;; ---------------------------------------------------------------------
;; state: the deep state handler in a tight get/put loop — one capture
;; and one resume per operation, the minimal handler round-trip.
;; ---------------------------------------------------------------------

(define (eff-state-bench n)
  (with-state 0
    (lambda ()
      (let loop ([i 0])
        (if (= i n)
            (modulo (state-get) eff-mod)
            (begin
              (state-put (+ (state-get) i))
              (loop (+ i 1))))))))

;; ---------------------------------------------------------------------
;; gen: a two-stage generator pipeline (numbers -> filtered/mapped),
;; O(1) handler frames per step; the coroutine-switch shape.
;; ---------------------------------------------------------------------

(define (eff-gen-bench n)
  (let* ([nums (make-generator
                (lambda (yield)
                  (do ([i 0 (+ i 1)]) ((= i n) 'out)
                    (yield i))))]
         [evens (make-generator
                 (lambda (yield)
                   (let loop ()
                     (let ([v (nums)])
                       (if (eq? v 'done)
                           'out
                           (begin
                             (when (even? v) (yield (* v 3)))
                             (loop)))))))])
    (let loop ([acc 0])
      (let ([v (evens)])
        (if (eq? v 'done)
            (modulo acc eff-mod)
            (loop (+ acc v)))))))

;; ---------------------------------------------------------------------
;; amb: multi-shot nondeterministic search (Pythagorean triples with
;; legs up to n) — every choice point's continuation is resumed once
;; per alternative, the reify-and-copy worst case.
;; ---------------------------------------------------------------------

(define (eff-amb-bench n)
  (let ([sols (amb-collect
               (lambda ()
                 (let* ([a (amb-choose (eff-range 1 (+ n 1)))]
                        [b (amb-choose (eff-range a (+ n 1)))]
                        [c (amb-choose (eff-range b (+ n 1)))])
                   (amb-require (= (+ (* a a) (* b b)) (* c c)))
                   (list a b c))))])
    (+ (* 100 (length sols))
       (modulo (fold-left + 0 (map (lambda (s) (apply + s)) sols)) 97))))

;; ---------------------------------------------------------------------
;; deep: perform across a deep inert stack. 1800 non-tail frames are
;; built once under the state handler, then every get/put captures and
;; re-enters the whole tower — the shape where stack-management
;; strategy dominates: a one-shot-fused capture freezes the tower with
;; a pointer move (copying only on resume), while reify-and-copy clones
;; all 1800 frames at capture *and* at resume, every operation. The
;; depth stays below the segment split limit so the tower is one
;; contiguous segment.
;; ---------------------------------------------------------------------

(define (eff-deep-dig depth thunk)
  (if (zero? depth)
      (thunk)
      (+ 1 (eff-deep-dig (- depth 1) thunk))))

(define (eff-deep-bench n)
  (with-state 0
    (lambda ()
      (eff-deep-dig 1800
        (lambda ()
          (let loop ([i 0])
            (if (= i n)
                (modulo (state-get) eff-mod)
                (begin
                  (state-put (+ (state-get) i))
                  (loop (+ i 1))))))))))

;; ---------------------------------------------------------------------
;; shift/reset: the classic delimited-control visitor — nondeterministic
;; walk encoded with shift, resumed twice per node.
;; ---------------------------------------------------------------------

(define (eff-shift-bench n)
  (let loop ([i 0] [acc 0])
    (if (= i n)
        (modulo acc eff-mod)
        (loop (+ i 1)
              (+ acc (reset (+ 1 (shift k (+ (k i) (k (+ i 1)))))))))))
