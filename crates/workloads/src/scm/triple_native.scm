;; The triple delimited-continuation benchmark (figure 1), "native"
;; variant: finds all (i j k), 0 <= i <= j <= k <= n, with i+j+k = n,
;; exploring the space with shift/reset over the engine's built-in
;; multi-prompt delimited control — two prompt tags for the two kinds of
;; choices, explored in a deterministic order.

(define (nt-reset tag thunk) (%call-with-prompt tag thunk (lambda (v) v)))

(define (nt-shift tag f)
  (%call-with-composable-continuation tag
    (lambda (k)
      (%abort tag
              (f (lambda (v) (nt-reset tag (lambda () (k v)))))))))

;; Sum k(i) over the integer range [lo, hi].
(define (nt-choice lo hi tag)
  (nt-shift tag
    (lambda (k)
      (let loop ([i lo] [count 0])
        (if (> i hi)
            count
            (loop (+ i 1) (+ count (k i))))))))

(define (triple-native n)
  (nt-reset 'p1
    (lambda ()
      (let ([i (nt-choice 0 n 'p1)])
        (nt-reset 'p2
          (lambda ()
            (let* ([j (nt-choice i n 'p2)]
                   [k (- n i j)])
              (if (and (>= k j) (<= k n)) 1 0))))))))
