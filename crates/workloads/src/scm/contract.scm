;; The §8.4 contract microbenchmark: calling an imported, non-inlined
;; identity function with and without an (-> integer? integer?) contract.
;; The checked loop is the pattern sped up by opportunistic one-shot
;; continuations and the compiler's attachment specialization.

(define (contract-identity x) x)

(define contract-checked-identity
  ((contract-> integer? integer? 'id) contract-identity))

(define (contract-unchecked-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i) acc (loop (- i 1) (contract-identity (+ acc 1))))))

(define (contract-checked-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i) acc (loop (- i 1) (contract-checked-identity (+ acc 1))))))
