;; The classic ctak benchmark (§8.1): tak with every return routed
;; through a captured continuation. Continuation-capture intensive.

(define (ctak x y z)
  (call/cc (lambda (k) (ctak-aux k x y z))))

(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (call/cc
       (lambda (k)
         (ctak-aux
          k
          (call/cc (lambda (k) (ctak-aux k (- x 1) y z)))
          (call/cc (lambda (k) (ctak-aux k (- y 1) z x)))
          (call/cc (lambda (k) (ctak-aux k (- z 1) x y))))))))

;; Standard size is (ctak 18 12 6); scaled sizes used for timing.
(define (ctak-bench n)
  (cond [(= n 0) (ctak 12 8 4)]
        [(= n 1) (ctak 15 10 5)]
        [(= n 2) (ctak 18 12 6)]
        [else (ctak 12 8 4)]))
