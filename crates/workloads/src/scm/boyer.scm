;; A compact boyer-style benchmark (the nboyer/sboyer family of figure
;; 2): one-way pattern matching, term rewriting to normal form with a
;; lemma table keyed by head symbol, and tautology checking under truth
;; assumptions. Rule set reduced from the classic benchmark; same
;; computational shape (assq-heavy matching, deep recursion, heavy
;; consing).

;; Pattern variables are symbols (?a ?b ...); match returns a binding
;; alist or #f.
(define (boyer-var? x)
  (and (symbol? x)
       (char=? (string-ref (symbol->string x) 0) #\?)))

(define (boyer-match pat term bindings)
  (cond [(boyer-var? pat)
         (let ([hit (assq pat bindings)])
           (if hit
               (and (equal? (cdr hit) term) bindings)
               (cons (cons pat term) bindings)))]
        [(pair? pat)
         (and (pair? term)
              (let ([b (boyer-match (car pat) (car term) bindings)])
                (and b (boyer-match (cdr pat) (cdr term) b))))]
        [else (and (eqv? pat term) bindings)]))

(define (boyer-substitute template bindings)
  (cond [(boyer-var? template)
         (let ([hit (assq template bindings)])
           (if hit (cdr hit) template))]
        [(pair? template)
         (cons (boyer-substitute (car template) bindings)
               (boyer-substitute (cdr template) bindings))]
        [else template]))

(define boyer-lemmas (make-hashtable))

(define (boyer-add-lemma! lhs rhs)
  (let ([head (car lhs)])
    (hashtable-set! boyer-lemmas head
                    (cons (cons lhs rhs)
                          (hashtable-ref boyer-lemmas head '())))))

;; The (reduced) lemma set.
(boyer-add-lemma! '(and ?p ?q) '(if ?p (if ?q (t) (f)) (f)))
(boyer-add-lemma! '(or ?p ?q) '(if ?p (t) (if ?q (t) (f))))
(boyer-add-lemma! '(not ?p) '(if ?p (f) (t)))
(boyer-add-lemma! '(implies ?p ?q) '(if ?p (if ?q (t) (f)) (t)))
(boyer-add-lemma! '(iff ?p ?q) '(and (implies ?p ?q) (implies ?q ?p)))
(boyer-add-lemma! '(plus (plus ?x ?y) ?z) '(plus ?x (plus ?y ?z)))
(boyer-add-lemma! '(equal (plus ?a ?b) (zero)) '(and (zerop ?a) (zerop ?b)))
(boyer-add-lemma! '(difference ?x ?x) '(zero))
(boyer-add-lemma! '(equal (plus ?a ?b) (plus ?a ?c)) '(equal ?b ?c))
(boyer-add-lemma! '(equal (zero) (difference ?x ?y)) '(not (lessp ?y ?x)))
(boyer-add-lemma! '(times ?x (plus ?y ?z))
                  '(plus (times ?x ?y) (times ?x ?z)))
(boyer-add-lemma! '(times (times ?x ?y) ?z) '(times ?x (times ?y ?z)))
(boyer-add-lemma! '(equal (times ?x ?y) (zero))
                  '(or (zerop ?x) (zerop ?y)))
(boyer-add-lemma! '(append (append ?x ?y) ?z) '(append ?x (append ?y ?z)))
(boyer-add-lemma! '(reverse (append ?a ?b))
                  '(append (reverse ?b) (reverse ?a)))
(boyer-add-lemma! '(length (append ?a ?b))
                  '(plus (length ?a) (length ?b)))
(boyer-add-lemma! '(length (reverse ?x)) '(length ?x))
(boyer-add-lemma! '(member ?x (append ?a ?b))
                  '(or (member ?x ?a) (member ?x ?b)))
(boyer-add-lemma! '(member ?x (reverse ?y)) '(member ?x ?y))
(boyer-add-lemma! '(zerop (zero)) '(t))
(boyer-add-lemma! '(lessp ?x ?x) '(f))

(define (boyer-rewrite term)
  (if (pair? term)
      (boyer-rewrite-with-lemmas
       (cons (car term) (map boyer-rewrite (cdr term)))
       (hashtable-ref boyer-lemmas (car term) '()))
      term))

(define (boyer-rewrite-with-lemmas term lemmas)
  (if (null? lemmas)
      term
      (let ([b (boyer-match (car (car lemmas)) term '())])
        (if b
            (boyer-rewrite (boyer-substitute (cdr (car lemmas)) b))
            (boyer-rewrite-with-lemmas term (cdr lemmas))))))

;; Tautology checking of rewritten if-terms.
(define (boyer-truep x lst) (or (equal? x '(t)) (member x lst)))
(define (boyer-falsep x lst) (or (equal? x '(f)) (member x lst)))

(define (boyer-tautologyp x true-lst false-lst)
  (cond [(boyer-truep x true-lst) #t]
        [(boyer-falsep x false-lst) #f]
        [(and (pair? x) (eq? (car x) 'if))
         (cond [(boyer-truep (cadr x) true-lst)
                (boyer-tautologyp (caddr x) true-lst false-lst)]
               [(boyer-falsep (cadr x) false-lst)
                (boyer-tautologyp (cadddr x) true-lst false-lst)]
               [else
                (and (boyer-tautologyp (caddr x)
                                       (cons (cadr x) true-lst) false-lst)
                     (boyer-tautologyp (cadddr x)
                                       true-lst (cons (cadr x) false-lst)))])]
        [else #f]))

(define (boyer-tautp x)
  (boyer-tautologyp (boyer-rewrite x) '() '()))

;; Test theorems: each instance pairs syntactically different sides that
;; the lemma database normalizes to identical forms, so the tautology
;; checker proves the implication by assumption matching — the same
;; rewrite-then-check shape as the classic benchmark.
(define boyer-instances
  (list
   ;; member/append/reverse normalization
   '(implies (member q (append a (reverse b)))
             (or (member q a) (member q b)))
   ;; plus/zero normalization
   '(implies (equal (plus a b) (zero))
             (and (zerop a) (zerop b)))
   ;; associativity chains
   '(implies (equal (plus (plus a b) c) (zero))
             (equal (plus a (plus b c)) (zero)))
   ;; length/reverse/append
   '(implies (equal (length (reverse (append a b))) (zero))
             (equal (length (append (reverse b) (reverse a))) (zero)))))

(define (boyer-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i)
        acc
        (loop (- i 1)
              (+ acc
                 (fold-left (lambda (a inst) (+ a (if (boyer-tautp inst) 1 0)))
                            0 boyer-instances))))))
