;; Figure 4 microbenchmarks: raw continuation-attachment operations.
;; Each `(X-bench n)` runs n iterations (loops) or a depth-n recursion
;; and returns a small checksum so results can be validated.

(define (ident x) x)               ; non-inlined helper for *-arg-call

;; ---- base (no attachments) ----

(define (base-loop-bench n)
  (if (zero? n) 'done (base-loop-bench (- n 1))))

(define (base-callcc-loop-bench n)
  (if (zero? n)
      'done
      (begin (call/cc (lambda (k) #f))
             (base-callcc-loop-bench (- n 1)))))

(define (base-deep-bench n)
  (if (zero? n) 0 (+ 1 (base-deep-bench (- n 1)))))

(define (base-callcc-deep-bench n)
  (if (zero? n)
      (call/cc (lambda (k) 0))
      (+ 1 (base-callcc-deep-bench (- n 1)))))

;; ---- attachment loops (set/get/consume in tail position) ----

(define (set-loop-bench n)
  (if (zero? n)
      'done
      (call-setting-continuation-attachment n
        (lambda () (set-loop-bench (- n 1))))))

(define (get-loop-bench n)
  (if (zero? n)
      'done
      (call-getting-continuation-attachment 0
        (lambda (v) (get-loop-bench (- n 1))))))

(define (get-has-loop-bench n)
  (if (zero? n)
      'done
      (call-setting-continuation-attachment n
        (lambda ()
          (call-getting-continuation-attachment 0
            (lambda (v) (get-has-loop-bench (- n 1))))))))

(define (get-set-loop-bench n)
  (if (zero? n)
      'done
      (call-getting-continuation-attachment 0
        (lambda (v)
          (call-setting-continuation-attachment (if v n 0)
            (lambda () (get-set-loop-bench (- n 1))))))))

(define (consume-set-loop-bench n)
  (if (zero? n)
      'done
      (call-consuming-continuation-attachment 0
        (lambda (v)
          (call-setting-continuation-attachment (if v n 0)
            (lambda () (consume-set-loop-bench (- n 1))))))))

;; ---- deep recursions with an attachment per frame ----

;; set in non-tail position, no tail call in the body (§7.2 case c).
(define (set-nontail-notail-bench n)
  (if (zero? n)
      0
      (+ 1 (call-setting-continuation-attachment n
             (lambda () (+ 0 (set-nontail-notail-bench (- n 1))))))))

;; set in tail position, body without a tail call (§7.2 case a).
(define (set-tail-notail-bench n)
  (if (zero? n)
      0
      (call-setting-continuation-attachment n
        (lambda () (+ 1 (set-tail-notail-bench (- n 1)))))))

;; set in non-tail position with a tail call in the body (§7.2 case b).
(define (set-nontail-tail-bench n)
  (if (zero? n)
      0
      (+ 1 (call-setting-continuation-attachment n
             (lambda () (set-nontail-tail-bench (- n 1)))))))

;; ---- loops with a set around the recursive call's argument ----

(define (loop-arg-call-bench n)
  (if (zero? n)
      'done
      (loop-arg-call-bench
       (call-setting-continuation-attachment n
         (lambda () (ident (- n 1)))))))

(define (loop-arg-prim-bench n)
  (if (zero? n)
      'done
      (loop-arg-prim-bench
       (call-setting-continuation-attachment n
         (lambda () (- n 1))))))
