;; The triple benchmark, "[K]" variant: nondeterministic choice by
;; explicit backtracking over a stack of failure continuations captured
;; with call/cc (amb-style), standing in for Kiselyov's library
;; implementation of delimited control. Same deterministic search order.

(define (triple-k n)
  (let ([fails '()]
        [count 0])
    (call/cc
     (lambda (done)
       (define (fail)
         (if (null? fails)
             (done count)
             (let ([f (car fails)])
               (set! fails (cdr fails))
               (f))))
       (define (choose lo hi)
         (call/cc
          (lambda (k)
            (define (try i)
              (if (> i hi)
                  (fail)
                  (begin
                    (set! fails (cons (lambda () (try (+ i 1))) fails))
                    (k i))))
            (try lo))))
       (let* ([i (choose 0 n)]
              [j (choose i n)]
              [k (- n i j)])
         (if (and (>= k j) (<= k n))
             (set! count (+ count 1))
             (void))
         (fail))))))
