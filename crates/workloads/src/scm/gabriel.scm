;; A representative port of the traditional Scheme benchmark suite used
;; for figure 2 (checking that attachment support does not slow down
;; programs that never touch marks). Each `(X-bench n)` entry scales with
;; n and returns a checksum.

;; ---------------------------------------------------------------------
;; tak / takl / cpstak
;; ---------------------------------------------------------------------

(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))

(define (tak-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i) acc (loop (- i 1) (+ acc (tak 14 10 3))))))

(define (listn n) (if (zero? n) '() (cons n (listn (- n 1)))))

(define (shorterp x y)
  (and (pair? y) (or (null? x) (shorterp (cdr x) (cdr y)))))

(define (mas x y z)
  (if (not (shorterp y x))
      z
      (mas (mas (cdr x) y z)
           (mas (cdr y) z x)
           (mas (cdr z) x y))))

(define (takl-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i)
        acc
        (loop (- i 1) (+ acc (length (mas (listn 12) (listn 8) (listn 2))))))))

(define (cpstak x y z)
  (define (tak x y z k)
    (if (not (< y x))
        (k z)
        (tak (- x 1) y z
             (lambda (v1)
               (tak (- y 1) z x
                    (lambda (v2)
                      (tak (- z 1) x y
                           (lambda (v3) (tak v1 v2 v3 k)))))))))
  (tak x y z (lambda (a) a)))

(define (cpstak-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i) acc (loop (- i 1) (+ acc (cpstak 14 10 3))))))

;; ---------------------------------------------------------------------
;; fib / ack / div
;; ---------------------------------------------------------------------

(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))

(define (fib-bench n) (fib n))

(define (ack m n)
  (cond [(zero? m) (+ n 1)]
        [(zero? n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))

(define (ack-bench n) (ack 2 n))

(define (create-n n) (listn n))

(define (recursive-div2 l)
  (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))

(define (iterative-div2 l)
  (do ([l l (cddr l)] [a '() (cons (car l) a)])
      ((null? l) a)))

(define (div-bench n)
  (let ([l (create-n 200)])
    (let loop ([i n] [acc 0])
      (if (zero? i)
          acc
          (loop (- i 1)
                (+ acc
                   (length (recursive-div2 l))
                   (length (iterative-div2 l))))))))

;; ---------------------------------------------------------------------
;; deriv / dderiv: symbolic differentiation
;; ---------------------------------------------------------------------

(define (deriv a)
  (cond [(not (pair? a)) (if (eq? a 'x) 1 0)]
        [(eq? (car a) '+) (cons '+ (map deriv (cdr a)))]
        [(eq? (car a) '-) (cons '- (map deriv (cdr a)))]
        [(eq? (car a) '*)
         (list '* a (cons '+ (map (lambda (t) (list '/ (deriv t) t)) (cdr a))))]
        [(eq? (car a) '/)
         (list '- (list '/ (deriv (cadr a)) (caddr a))
               (list '/ (cadr a)
                     (list '* (caddr a) (caddr a) (deriv (caddr a)))))]
        [else (error "deriv: no derivation method" (car a))]))

(define deriv-input '(+ (* 3 x x) (* a x x) (* b x) 5))

(define (tree-count t)
  (if (pair? t)
      (+ (tree-count (car t)) (tree-count (cdr t)))
      1))

(define (deriv-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i)
        acc
        (loop (- i 1) (+ acc (tree-count (deriv deriv-input)))))))

;; Table-driven deriv (dderiv): dispatch through an association table.
(define dderiv-table (make-hashtable))

(define (dderiv a)
  (if (not (pair? a))
      (if (eq? a 'x) 1 0)
      (let ([f (hashtable-ref dderiv-table (car a) #f)])
        (if f (f a) (error "dderiv: no method" (car a))))))

(hashtable-set! dderiv-table '+
  (lambda (a) (cons '+ (map dderiv (cdr a)))))
(hashtable-set! dderiv-table '-
  (lambda (a) (cons '- (map dderiv (cdr a)))))
(hashtable-set! dderiv-table '*
  (lambda (a)
    (list '* a (cons '+ (map (lambda (t) (list '/ (dderiv t) t)) (cdr a))))))
(hashtable-set! dderiv-table '/
  (lambda (a)
    (list '- (list '/ (dderiv (cadr a)) (caddr a))
          (list '/ (cadr a)
                (list '* (caddr a) (caddr a) (dderiv (caddr a)))))))

(define (dderiv-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i)
        acc
        (loop (- i 1) (+ acc (tree-count (dderiv deriv-input)))))))

;; ---------------------------------------------------------------------
;; destruct: destructive list surgery
;; ---------------------------------------------------------------------

(define (destruct-make n m)
  (let loop ([i n] [acc '()])
    (if (zero? i) acc (loop (- i 1) (cons (listn m) acc)))))

(define (destruct-mutate! ls)
  (for-each
   (lambda (l)
     (let loop ([p l])
       (if (pair? (cdr p))
           (begin (set-car! p (+ (car p) 1)) (loop (cdr p)))
           (set-car! p 0))))
   ls)
  ls)

(define (destruct-sum ls)
  (fold-left (lambda (acc l) (+ acc (fold-left + 0 l))) 0 ls))

(define (destruct-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i)
        acc
        (loop (- i 1)
              (+ acc (destruct-sum (destruct-mutate! (destruct-make 20 20))))))))

;; ---------------------------------------------------------------------
;; nqueens
;; ---------------------------------------------------------------------

(define (nqueens n)
  (define (ok? row dist placed)
    (if (null? placed)
        #t
        (and (not (= (car placed) (+ row dist)))
             (not (= (car placed) (- row dist)))
             (ok? row (+ dist 1) (cdr placed)))))
  (define (try x y z)
    (if (null? x)
        (if (null? y) 1 0)
        (+ (if (ok? (car x) 1 z)
               (try (append (cdr x) y) '() (cons (car x) z))
               0)
           (try (cdr x) (cons (car x) y) z))))
  (try (iota n) '() '()))

(define (nqueens-bench n) (nqueens n))

;; ---------------------------------------------------------------------
;; sort1: merge sort over a pseudo-random list
;; ---------------------------------------------------------------------

(define (msort-merge a b)
  (cond [(null? a) b]
        [(null? b) a]
        [(< (car a) (car b)) (cons (car a) (msort-merge (cdr a) b))]
        [else (cons (car b) (msort-merge a (cdr b)))]))

(define (msort-split l)
  (if (or (null? l) (null? (cdr l)))
      (cons l '())
      (let ([rest (msort-split (cddr l))])
        (cons (cons (car l) (car rest))
              (cons (cadr l) (cdr rest))))))

(define (msort l)
  (if (or (null? l) (null? (cdr l)))
      l
      (let ([halves (msort-split l)])
        (msort-merge (msort (car halves)) (msort (cdr halves))))))

(define (sort1-random-list n seed)
  (let loop ([i n] [s seed] [acc '()])
    (if (zero? i)
        acc
        (let ([s2 (modulo (+ (* s 1103515245) 12345) 2147483648)])
          (loop (- i 1) s2 (cons (modulo s2 1000) acc))))))

(define (sort1-bench n)
  (let loop ([i n] [acc 0])
    (if (zero? i)
        acc
        (loop (- i 1)
              (+ acc (car (msort (sort1-random-list 200 (+ i 7)))))))))

;; ---------------------------------------------------------------------
;; fft: flonum-intensive fast Fourier transform
;; ---------------------------------------------------------------------

(define pi 3.141592653589793)

(define (fft! areal aimag)
  (let ([n (vector-length areal)])
    ;; bit-reversal permutation
    (let loop ([i 0] [j 0])
      (if (< i n)
          (begin
            (if (< i j)
                (let ([tr (vector-ref areal i)]
                      [ti (vector-ref aimag i)])
                  (vector-set! areal i (vector-ref areal j))
                  (vector-set! aimag i (vector-ref aimag j))
                  (vector-set! areal j tr)
                  (vector-set! aimag j ti))
                (void))
            (let adjust ([m (quotient n 2)] [j j])
              (if (and (>= m 1) (>= j m))
                  (adjust (quotient m 2) (- j m))
                  (loop (+ i 1) (+ j m)))))
          (void)))
    ;; butterflies
    (let stages ([len 1])
      (if (< len n)
          (let ([ang (/ pi (exact->inexact len))])
            (let blocks ([i 0])
              (if (< i n)
                  (begin
                    (let pairs ([k 0])
                      (if (< k len)
                          (let* ([theta (* ang (exact->inexact k))]
                                 [wr (cos-approx theta)]
                                 [wi (sin-approx theta)]
                                 [i1 (+ i k)]
                                 [i2 (+ i1 len)]
                                 [tr (- (* wr (vector-ref areal i2))
                                        (* wi (vector-ref aimag i2)))]
                                 [ti (+ (* wr (vector-ref aimag i2))
                                        (* wi (vector-ref areal i2)))])
                            (vector-set! areal i2 (- (vector-ref areal i1) tr))
                            (vector-set! aimag i2 (- (vector-ref aimag i1) ti))
                            (vector-set! areal i1 (+ (vector-ref areal i1) tr))
                            (vector-set! aimag i1 (+ (vector-ref aimag i1) ti))
                            (pairs (+ k 1)))
                          (void)))
                    (blocks (+ i (* 2 len))))
                  (void)))
            (stages (* 2 len)))
          (void)))
    areal))

;; Polynomial approximations keep the kernel self-contained (no libm).
(define (sin-approx x)
  (let* ([x2 (* x x)]
         [x3 (* x2 x)]
         [x5 (* x3 x2)]
         [x7 (* x5 x2)])
    (+ (- x (/ x3 6.0)) (- (/ x5 120.0) (/ x7 5040.0)))))

(define (cos-approx x)
  (let* ([x2 (* x x)]
         [x4 (* x2 x2)]
         [x6 (* x4 x2)])
    (+ (- 1.0 (/ x2 2.0)) (- (/ x4 24.0) (/ x6 720.0)))))

(define (fft-bench n)
  (let loop ([i n] [acc 0.0])
    (if (zero? i)
        (inexact->exact (floor acc))
        (let ([re (make-vector 256 0.0)]
              [im (make-vector 256 0.0)])
          (let fill ([j 0])
            (if (< j 256)
                (begin
                  (vector-set! re j (exact->inexact (modulo (* j 37) 97)))
                  (fill (+ j 1)))
                (void)))
          (fft! re im)
          (loop (- i 1) (+ acc (abs (vector-ref re 1))))))))

;; ---------------------------------------------------------------------
;; primes: sieve of Eratosthenes over vectors
;; ---------------------------------------------------------------------

(define (primes-count limit)
  (let ([v (make-vector (+ limit 1) #t)])
    (vector-set! v 0 #f)
    (vector-set! v 1 #f)
    (let loop ([i 2])
      (if (> (* i i) limit)
          (void)
          (begin
            (if (vector-ref v i)
                (let mark ([j (* i i)])
                  (if (<= j limit)
                      (begin (vector-set! v j #f) (mark (+ j i)))
                      (void)))
                (void))
            (loop (+ i 1)))))
    (let count ([i 0] [acc 0])
      (if (> i limit)
          acc
          (count (+ i 1) (if (vector-ref v i) (+ acc 1) acc))))))

(define (primes-bench n) (primes-count n))

;; ---------------------------------------------------------------------
;; collatz-q: a long arithmetic loop
;; ---------------------------------------------------------------------

(define (collatz-steps n)
  (let loop ([n n] [steps 0])
    (cond [(= n 1) steps]
          [(even? n) (loop (quotient n 2) (+ steps 1))]
          [else (loop (+ (* 3 n) 1) (+ steps 1))])))

(define (collatz-bench n)
  (let loop ([i 1] [acc 0])
    (if (> i n) acc (loop (+ i 1) (+ acc (collatz-steps i))))))
