;; The triple benchmark, "[DPJS]" variant: shift/reset implemented in
;; terms of *undelimited* call/cc plus a metacontinuation cell — the
;; classic Filinski construction, standing in for the Dybvig/Peyton
;; Jones/Sabry library implementation the paper runs (which likewise
;; builds delimited control over call/cc and mutable state). Same
;; deterministic search order as the native variant.

;; The metacontinuation: what to do with the value of the current
;; delimited computation.
(define $dpjs-mk (lambda (v) (error "dpjs: no enclosing reset")))

(define (dpjs-abort v) ($dpjs-mk v))

(define (dpjs-reset thunk)
  (call/cc
   (lambda (k)
     (let ([saved $dpjs-mk])
       (set! $dpjs-mk
             (lambda (v)
               (set! $dpjs-mk saved)
               (k v)))
       (dpjs-abort (thunk))))))

(define (dpjs-shift f)
  (call/cc
   (lambda (k)
     (dpjs-abort
      (f (lambda (v)
           (dpjs-reset (lambda () (k v)))))))))

(define (dpjs-choice lo hi)
  (dpjs-shift
   (lambda (k)
     (let loop ([i lo] [count 0])
       (if (> i hi)
           count
           (loop (+ i 1) (+ count (k i))))))))

(define (triple-dpjs n)
  (dpjs-reset
   (lambda ()
     (let ([i (dpjs-choice 0 n)])
       (dpjs-reset
        (lambda ()
          (let* ([j (dpjs-choice i n)]
                 [k (- n i j)])
            (if (and (>= k j) (<= k n)) 1 0))))))))
