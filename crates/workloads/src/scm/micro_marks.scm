;; Figure 5 microbenchmarks: continuation-mark operations at the Racket
;; level (with-continuation-mark + the mark-set API). Runs on both the
;; attachments engine ("Racket CS") and the eager mark-stack engine
;; ("old Racket").

(define (mark-ident x) x)          ; non-inlined helper

;; ---- base lines ----

(define (mbase-loop-bench n)
  (if (zero? n) 'done (mbase-loop-bench (- n 1))))

(define (mbase-deep-bench n)
  (if (zero? n) 0 (+ 1 (mbase-deep-bench (- n 1)))))

(define (mbase-arg-call-loop-bench n)
  (if (zero? n) 'done (mbase-arg-call-loop-bench (mark-ident (- n 1)))))

;; ---- with-continuation-mark ----

;; wcm around the recursive tail call.
(define (mset-loop-bench n)
  (if (zero? n)
      'done
      (with-continuation-mark 'key n
        (mset-loop-bench (- n 1)))))

;; deep recursion, wcm in non-tail position over a primitive body.
(define (mset-nontail-prim-bench n)
  (if (zero? n)
      0
      (+ 1 (with-continuation-mark 'key n (+ 0 n))
         (mset-nontail-prim-bench (- n 1)) (- 0 n))))

;; deep recursion, wcm in tail position, no tail call in body.
(define (mset-tail-notail-bench n)
  (if (zero? n)
      0
      (with-continuation-mark 'key n
        (+ 1 (mset-tail-notail-bench (- n 1))))))

;; deep recursion, wcm non-tail with a tail call in the body.
(define (mset-nontail-tail-bench n)
  (if (zero? n)
      0
      (+ 1 (with-continuation-mark 'key n
             (mset-nontail-tail-bench (- n 1))))))

;; loop: wcm around the argument, argument is a call.
(define (mset-arg-call-loop-bench n)
  (if (zero? n)
      'done
      (mset-arg-call-loop-bench
       (with-continuation-mark 'key n (mark-ident (- n 1))))))

;; loop: wcm around the argument, argument is a primitive.
(define (mset-arg-prim-loop-bench n)
  (if (zero? n)
      'done
      (mset-arg-prim-loop-bench
       (with-continuation-mark 'key n (- n 1)))))

;; ---- mark lookups ----

;; continuation-mark-set-first with no mark anywhere.
(define (mfirst-none-loop-bench n)
  (if (zero? n)
      'done
      (begin
        (continuation-mark-set-first #f 'missing-key 'none)
        (mfirst-none-loop-bench (- n 1)))))

;; continuation-mark-set-first with a shallow mark present.
(define (mfirst-some-loop-bench n)
  (with-continuation-mark 'key 'present
    (mfirst-some-inner n)))

(define (mfirst-some-inner n)
  (if (zero? n)
      'done
      (begin
        (continuation-mark-set-first #f 'key 'none)
        (mfirst-some-inner (- n 1)))))

;; continuation-mark-set-first where the newest mark is *deep*: build a
;; deep continuation with the mark at the old end, then look it up
;; repeatedly — exercises the §7.5 path-compression cache (amortized
;; constant time "no matter how old the newest frame").
(define (mfirst-deep-loop-bench n)
  (with-continuation-mark 'key 'deep-mark
    (mfirst-deep-grow 200 n)))

(define (mfirst-deep-grow depth n)
  (if (zero? depth)
      (mfirst-deep-inner n)
      (+ 0 (mfirst-deep-grow (- depth 1) n))))

(define (mfirst-deep-inner n)
  (if (zero? n)
      0
      (begin
        (continuation-mark-set-first #f 'key 'none)
        (mfirst-deep-inner (- n 1)))))

;; call-with-immediate-continuation-mark, absent and present.
(define (mimmed-none-loop-bench n)
  (if (zero? n)
      'done
      (call-with-immediate-continuation-mark 'key
        (lambda (v) (mimmed-none-loop-bench (- n 1)))
        'none)))

(define (mimmed-some-loop-bench n)
  (if (zero? n)
      'done
      (with-continuation-mark 'key n
        (call-with-immediate-continuation-mark 'key
          (lambda (v) (mimmed-some-loop-bench (- n 1)))
          'none))))
