//! Serializers for the two timeline artifacts:
//!
//! * [`spans_to_chrome`] — wall-clock [`Span`]s from `cm-engines`
//!   (engine runs, scheduler slices, pool workers) as Chrome
//!   `trace_event` JSON: load the file at `chrome://tracing` or
//!   <https://ui.perfetto.dev> and a 1000-engine `cm-sched` run renders
//!   as a per-worker timeline.
//! * [`journal_to_json`] — a VM [`TraceJournal`] as a structured report
//!   (`cm-trace-journal-v1`): per-kind totals plus the retained ring of
//!   events, each with its step index and frame depth.
//! * [`journal_to_chrome`] — the same ring as `trace_event` *instant*
//!   events on a virtual clock (1 step = 1 µs), so a §2 example's mark
//!   operations render as a timeline too.

use cm_engines::Span;
use cm_vm::{TraceJournal, TraceKind};

use crate::json::Json;

/// Schema tag carried by every journal report.
pub const JOURNAL_SCHEMA: &str = "cm-trace-journal-v1";

/// Converts engine/scheduler/pool spans to a Chrome `trace_event`
/// document (`ph: "X"` complete events; `ts`/`dur` in microseconds).
pub fn spans_to_chrome<'a>(spans: impl IntoIterator<Item = &'a Span>) -> Json {
    let events = spans
        .into_iter()
        .map(|s| {
            let args = s
                .args
                .iter()
                .map(|(k, v)| ((*k).to_owned(), Json::str(v.clone())))
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::str(s.name.clone())),
                ("cat".into(), Json::str(s.cat)),
                ("ph".into(), Json::str("X")),
                ("ts".into(), Json::num(s.start_us)),
                ("dur".into(), Json::num(s.dur_us)),
                ("pid".into(), Json::num(1)),
                ("tid".into(), Json::num(u64::from(s.tid))),
                ("args".into(), Json::Obj(args)),
            ])
        })
        .collect();
    chrome_doc(events)
}

/// Converts a journal's retained ring to `trace_event` instant events
/// on a virtual clock where one VM step is one microsecond.
pub fn journal_to_chrome(journal: &TraceJournal) -> Json {
    let events = journal
        .events()
        .map(|e| {
            Json::Obj(vec![
                ("name".into(), Json::str(e.kind.label())),
                ("cat".into(), Json::str("journal")),
                ("ph".into(), Json::str("i")),
                ("ts".into(), Json::num(e.step)),
                ("s".into(), Json::str("t")),
                ("pid".into(), Json::num(1)),
                ("tid".into(), Json::num(0)),
                (
                    "args".into(),
                    Json::Obj(vec![("depth".into(), Json::num(u64::from(e.depth)))]),
                ),
            ])
        })
        .collect();
    chrome_doc(events)
}

fn chrome_doc(events: Vec<Json>) -> Json {
    Json::Obj(vec![
        ("displayTimeUnit".into(), Json::str("ms")),
        ("traceEvents".into(), Json::Arr(events)),
    ])
}

/// Serializes a journal as a `cm-trace-journal-v1` report: identity,
/// ring occupancy, per-kind totals (every [`TraceKind`], in
/// discriminant order, even when zero), and the retained events.
pub fn journal_to_json(name: &str, journal: &TraceJournal) -> Json {
    let counts = TraceKind::ALL
        .iter()
        .map(|k| (k.label().to_owned(), Json::num(journal.count_of(*k))))
        .collect();
    let events = journal
        .events()
        .map(|e| {
            Json::Obj(vec![
                ("kind".into(), Json::str(e.kind.label())),
                ("step".into(), Json::num(e.step)),
                ("depth".into(), Json::num(u64::from(e.depth))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str(JOURNAL_SCHEMA)),
        ("name".into(), Json::str(name)),
        ("capacity".into(), Json::num(journal.capacity() as u64)),
        ("recorded".into(), Json::num(journal.len() as u64)),
        ("dropped".into(), Json::num(journal.dropped())),
        ("counts".into(), Json::Obj(counts)),
        ("events".into(), Json::Arr(events)),
    ])
}

/// Structural validation of a document produced by [`spans_to_chrome`]
/// or [`journal_to_chrome`] — the CLI runs this on everything it emits.
///
/// # Errors
///
/// Describes the first malformed event.
pub fn validate_chrome(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "cat", "ph"] {
            if e.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("event {i}: missing string field {key}"));
            }
        }
        for key in ["ts", "pid", "tid"] {
            if e.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("event {i}: missing numeric field {key}"));
            }
        }
        match e.get("ph").and_then(Json::as_str) {
            Some("X") => {
                if e.get("dur").and_then(Json::as_u64).is_none() {
                    return Err(format!("event {i}: complete event without dur"));
                }
            }
            Some("i") => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    Ok(())
}

/// Structural validation of a [`journal_to_json`] report.
///
/// # Errors
///
/// Describes the first schema violation.
pub fn validate_journal(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(JOURNAL_SCHEMA) {
        return Err(format!("schema tag is not {JOURNAL_SCHEMA}"));
    }
    let counts = doc.get("counts").ok_or("missing counts")?;
    for kind in TraceKind::ALL {
        if counts.get(kind.label()).and_then(Json::as_u64).is_none() {
            return Err(format!("counts missing kind {}", kind.label()));
        }
    }
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing events array")?;
    let mut last_step = 0;
    for (i, e) in events.iter().enumerate() {
        let kind = e
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing kind"))?;
        if !TraceKind::ALL.iter().any(|k| k.label() == kind) {
            return Err(format!("event {i}: unknown kind {kind}"));
        }
        let step = e
            .get("step")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing step"))?;
        if step < last_step {
            return Err(format!("event {i}: step went backwards"));
        }
        last_step = step;
        e.get("depth")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing depth"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_span() -> Span {
        Span {
            name: "t0".into(),
            cat: "slice",
            tid: 2,
            start_us: 10,
            dur_us: 5,
            args: vec![("steps", "100".into())],
        }
    }

    #[test]
    fn span_export_is_valid_and_round_trips() {
        let doc = spans_to_chrome([&sample_span()]);
        validate_chrome(&doc).unwrap();
        let text = doc.to_string_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        let e = &back.get("traceEvents").unwrap().as_arr().unwrap()[0];
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(e.get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(
            e.get("args").unwrap().get("steps").unwrap().as_str(),
            Some("100")
        );
    }

    #[test]
    fn journal_export_lists_every_kind_and_validates() {
        let mut j = TraceJournal::with_capacity(8);
        j.record(TraceKind::Capture, 3, 1);
        j.record(TraceKind::AttachPush, 5, 2);
        let doc = journal_to_json("demo", &j);
        validate_journal(&doc).unwrap();
        assert_eq!(doc.get("recorded").unwrap().as_u64(), Some(2));
        let counts = doc.get("counts").unwrap();
        assert_eq!(counts.get("capture").unwrap().as_u64(), Some(1));
        assert_eq!(counts.get("winder-leave").unwrap().as_u64(), Some(0));
        validate_chrome(&journal_to_chrome(&j)).unwrap();
    }

    #[test]
    fn validators_reject_broken_documents() {
        let doc = Json::Obj(vec![("traceEvents".into(), Json::Num(3.0))]);
        assert!(validate_chrome(&doc).is_err());
        let doc = Json::Obj(vec![("schema".into(), Json::str("nope"))]);
        assert!(validate_journal(&doc).is_err());
    }
}
