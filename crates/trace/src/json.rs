//! A minimal JSON value, writer, and parser.
//!
//! The build is dependency-free, so `cm-trace` carries its own JSON
//! layer. Objects preserve insertion order (a `Vec` of pairs, not a
//! map) so serialized output is deterministic — the golden-file tests
//! depend on that. The parser exists so the `cm-trace` CLI can
//! round-trip-validate every file it emits before reporting success.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized without a trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from any unsigned integer.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format every `cm-trace` output file uses.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output (we never escape above U+001F).
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("slice \"q\"\n")),
            ("n".into(), Json::num(42)),
            ("neg".into(), Json::Num(-1.5)),
            (
                "items".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Obj(vec![])]),
            ),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        match &v {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "b");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(v.to_string_compact(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"\\q\"", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integral_numbers_serialize_without_fraction() {
        assert_eq!(Json::num(7).to_string_compact(), "7");
        assert_eq!(Json::Num(2.5).to_string_compact(), "2.5");
    }

    #[test]
    fn escapes_survive_round_trip() {
        let v = Json::str("tab\there \u{1} quote\" back\\slash");
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }
}
