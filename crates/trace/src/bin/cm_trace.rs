//! `cm-trace` — emit the engine's three observability artifacts.
//!
//! Scenarios (`--scenario all` runs every one):
//!
//! * `journal` — runs the paper's §2 examples and one workload per
//!   benchmark group with VM tracing on, verifies counter/journal
//!   consistency for each, and writes `journal.json` (per-target
//!   `cm-trace-journal-v1` reports) plus `journal-timeline.json`
//!   (the first target's mark operations as Chrome instant events).
//! * `profile` — samples the instrumented demo program via
//!   continuation marks and writes `profile.folded` (collapsed stacks
//!   for flamegraph tools) plus `profile.json`.
//! * `timeline` — runs many engines through the multi-worker scheduler
//!   pool with span recording on and writes `timeline.json` (Chrome
//!   `trace_event`; open at chrome://tracing or ui.perfetto.dev).
//!
//! Every emitted JSON file is re-parsed and schema-validated with this
//! crate's own parser before the run reports success; any violation
//! (including a counter/journal mismatch) exits nonzero.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cm_core::EngineConfig;
use cm_engines::{run_pool, JobSpec, PoolConfig, PoolSpec, SchedConfig};
use cm_torture::torture_targets;
use cm_trace::chrome::{validate_chrome, validate_journal};
use cm_trace::profile::{DEMO_RUN, DEMO_SOURCE};
use cm_trace::{
    journal_to_chrome, journal_to_json, json, profile_source, run_journaled, spans_to_chrome, Json,
};

const USAGE: &str =
    "usage: cm-trace [--quick] [--out DIR] [--scenario all|journal|profile|timeline]

  --quick      smaller corpus and engine counts (CI smoke mode)
  --out DIR    output directory (default target/cm-trace)
  --scenario   which artifact to produce (default all)";

struct Args {
    quick: bool,
    out: PathBuf,
    scenario: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: PathBuf::from("target/cm-trace"),
        scenario: "all".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--scenario" => {
                args.scenario = it.next().ok_or("--scenario needs a value")?;
                if !matches!(
                    args.scenario.as_str(),
                    "all" | "journal" | "profile" | "timeline"
                ) {
                    return Err(format!("unknown scenario `{}`", args.scenario));
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Writes a JSON document, then re-parses it and runs `validate` on
/// the parsed form — proof the artifact is consumable, not just
/// serialized.
fn emit(
    path: &Path,
    doc: &Json,
    validate: impl Fn(&Json) -> Result<(), String>,
) -> Result<(), String> {
    let text = doc.to_string_pretty();
    std::fs::write(path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
    let back =
        json::parse(&text).map_err(|e| format!("{}: re-parse failed: {e}", path.display()))?;
    validate(&back).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("  wrote {}", path.display());
    Ok(())
}

fn journal_scenario(args: &Args) -> Result<(), String> {
    println!("journal: §2 examples + workload corpus, tracing on");
    let mut config = EngineConfig::full();
    // Bound the retained ring so the report stays a few MB even for
    // the long workloads; counts are exact regardless.
    config.machine.trace_capacity = 4096;
    let mut reports = Vec::new();
    let mut first_timeline = None;
    for target in torture_targets(args.quick) {
        let run = run_journaled(config.clone(), &target)?;
        println!(
            "  {:32} {:>9} steps, {:>6} journaled, counters consistent",
            run.name,
            run.stats.steps_executed,
            run.journal.len()
        );
        if first_timeline.is_none() {
            first_timeline = Some(journal_to_chrome(&run.journal));
        }
        reports.push(journal_to_json(&run.name, &run.journal));
    }
    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("cm-trace-journal-report-v1")),
        ("targets".into(), Json::Arr(reports)),
    ]);
    emit(&args.out.join("journal.json"), &doc, |d| {
        let targets = d
            .get("targets")
            .and_then(Json::as_arr)
            .ok_or("missing targets")?;
        if targets.is_empty() {
            return Err("no targets journaled".into());
        }
        targets.iter().try_for_each(validate_journal)
    })?;
    if let Some(timeline) = first_timeline {
        emit(
            &args.out.join("journal-timeline.json"),
            &timeline,
            validate_chrome,
        )?;
    }
    Ok(())
}

fn profile_scenario(args: &Args) -> Result<(), String> {
    println!("profile: sampling the instrumented demo via continuation marks");
    let fuel = if args.quick { 500 } else { 200 };
    let profile = profile_source(EngineConfig::full(), DEMO_SOURCE, DEMO_RUN, fuel)?;
    if profile.stacks.is_empty() {
        return Err("profiler collected no stacks".into());
    }
    println!(
        "  {} samples, {} distinct stacks",
        profile.samples,
        profile.stacks.len()
    );
    let folded = args.out.join("profile.folded");
    std::fs::write(&folded, profile.to_collapsed())
        .map_err(|e| format!("{}: {e}", folded.display()))?;
    println!("  wrote {}", folded.display());
    emit(
        &args.out.join("profile.json"),
        &profile.to_json("demo"),
        |d| {
            if d.get("schema").and_then(Json::as_str) != Some("cm-trace-profile-v1") {
                return Err("bad profile schema".into());
            }
            match d.get("samples").and_then(Json::as_u64) {
                Some(n) if n > 0 => Ok(()),
                _ => Err("no samples".into()),
            }
        },
    )
}

fn timeline_scenario(args: &Args) -> Result<(), String> {
    let tasks = if args.quick { 64 } else { 1000 };
    let workers = 4;
    // The work-stealing pool with migration on: the exported timeline
    // shows `steal` / `migrate` spans for every cross-worker move, plus
    // the pool-level metrics span (p50/p95/p99, Jain, migrations).
    let steal_config = Some(cm_engines::StealConfig {
        migrate: true,
        ..Default::default()
    });
    println!("timeline: {tasks} engines across {workers} workers, spans on, stealing on");
    let targets = torture_targets(true);
    let mut setups = Vec::new();
    for t in &targets {
        if !t.setup.is_empty() && !setups.contains(&t.setup) {
            setups.push(t.setup.clone());
        }
    }
    let jobs = (0..tasks)
        .map(|i| {
            let t = &targets[i % targets.len()];
            JobSpec {
                name: format!("{}#{}", t.name, i / targets.len()),
                run: t.run.clone(),
                expected: t.expected.clone(),
            }
        })
        .collect();
    let spec = PoolSpec {
        setups,
        jobs,
        verify: true,
    };
    let config = PoolConfig {
        workers,
        sched: SchedConfig {
            record_spans: true,
            ..SchedConfig::default()
        },
        engine: EngineConfig::full(),
        steal: steal_config,
    };
    let report = run_pool(&config, &spec);
    if report.metrics.failed > 0 || report.metrics.timed_out > 0 {
        return Err(format!(
            "pool run unhealthy: {} failed, {} timed out",
            report.metrics.failed, report.metrics.timed_out
        ));
    }
    if !report.all_mismatches().is_empty() {
        return Err(format!(
            "pool run produced {} output mismatches",
            report.all_mismatches().len()
        ));
    }
    let spans = report.all_spans();
    println!(
        "  {} tasks completed, {} spans recorded ({} steals, {} migrations)",
        report.metrics.completed,
        spans.len(),
        report.metrics.total_steals,
        report.metrics.total_migrations
    );
    println!(
        "  latency p50 {:?} / p95 {:?} / p99 {:?}",
        report.metrics.latency_p50, report.metrics.latency_p95, report.metrics.latency_p99
    );
    emit(
        &args.out.join("timeline.json"),
        &spans_to_chrome(spans.iter().copied()),
        |d| {
            validate_chrome(d)?;
            let n = d
                .get("traceEvents")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            if n < tasks {
                return Err(format!("only {n} spans for {tasks} tasks"));
            }
            Ok(())
        },
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cm-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cm-trace: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    let run_all = args.scenario == "all";
    let mut failures = Vec::new();
    if run_all || args.scenario == "journal" {
        if let Err(e) = journal_scenario(&args) {
            failures.push(e);
        }
    }
    if run_all || args.scenario == "profile" {
        if let Err(e) = profile_scenario(&args) {
            failures.push(e);
        }
    }
    if run_all || args.scenario == "timeline" {
        if let Err(e) = timeline_scenario(&args) {
            failures.push(e);
        }
    }
    if failures.is_empty() {
        println!("cm-trace: all scenarios clean");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("cm-trace: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
