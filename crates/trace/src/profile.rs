//! A sampling profiler whose stack walker *is* the continuation-mark
//! machinery.
//!
//! Instrumented programs wrap each profiled procedure body in
//! `(with-continuation-mark 'profile-key '<name> ...)` — exactly the
//! idiom the paper's §2.3 uses for its error-context and profiling
//! examples. The profiler then runs the program in fuel slices
//! ([`cm_engines::Engine::run`]); every suspension is a sample point,
//! and the suspended machine's marks register (the same chain
//! `continuation-mark-set->list` walks, exposed through
//! [`cm_engines::Engine::suspended_marks`]) yields one mark per live
//! instrumented frame. No shadow stack, no unwinding: the continuation
//! marks are the stack-reconstruction metadata.
//!
//! Output is the collapsed-stack format (`root;child;leaf COUNT` per
//! line) consumed by `flamegraph.pl`, speedscope, and friends.

use std::collections::BTreeMap;

use cm_core::EngineConfig;
use cm_engines::{RunResult, WorkerHost};
use cm_sexpr::{sym, Sym};
use cm_vm::Value;

use crate::json::Json;

/// The mark key instrumented programs use: `'profile-key`.
pub const PROFILE_KEY: &str = "profile-key";

/// A demo program with three instrumented procedures (the CLI's
/// `profile` scenario and the tests both run it). `main` keeps its
/// mark live by making the `fib` call a non-tail argument position.
pub const DEMO_SOURCE: &str = "
(define (fib n)
  (with-continuation-mark 'profile-key 'fib
    (if (< n 2) (base n) (+ (fib (- n 1)) (fib (- n 2))))))
(define (base n)
  (with-continuation-mark 'profile-key 'base (+ n 1)))
(define (main n)
  (with-continuation-mark 'profile-key 'main (+ 0 (fib n))))
";

/// The demo's entry expression.
pub const DEMO_RUN: &str = "(main 16)";

/// An aggregated sampling profile: stack → sample count.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Total suspension samples taken (including ones with no
    /// instrumented frames live).
    pub samples: u64,
    /// Root-first stacks and how many samples landed in each.
    pub stacks: BTreeMap<Vec<String>, u64>,
}

impl Profile {
    /// Records one sample.
    pub fn add(&mut self, stack: Vec<String>) {
        self.samples += 1;
        if !stack.is_empty() {
            *self.stacks.entry(stack).or_insert(0) += 1;
        }
    }

    /// Renders the collapsed-stack flamegraph format: one
    /// `root;child;leaf COUNT` line per distinct stack, sorted.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            out.push_str(&stack.join(";"));
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// The profile as JSON (`cm-trace-profile-v1`).
    pub fn to_json(&self, name: &str) -> Json {
        let stacks = self
            .stacks
            .iter()
            .map(|(stack, count)| {
                Json::Obj(vec![
                    (
                        "frames".into(),
                        Json::Arr(stack.iter().map(Json::str).collect()),
                    ),
                    ("count".into(), Json::num(*count)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str("cm-trace-profile-v1")),
            ("name".into(), Json::str(name)),
            ("key".into(), Json::str(PROFILE_KEY)),
            ("samples".into(), Json::num(self.samples)),
            ("stacks".into(), Json::Arr(stacks)),
        ])
    }
}

/// Reads the values under `key` out of a suspended machine's marks
/// register, root-first.
///
/// The register is a list, innermost frame first, of `$mark-frame`
/// records whose field 0 is an `eq?`-keyed association list (see
/// `marks_attachments.scm`); plain `(key . value)` pairs are accepted
/// too for programs that push attachments directly.
pub fn extract_stack(marks: &Value, key: &str) -> Vec<String> {
    let key = sym(key);
    let mut leaf_first = Vec::new();
    let mut cursor = *marks;
    while let Value::Pair(p) = cursor {
        let (frame, next) = p.car_cdr();
        if let Some(v) = frame_lookup(&frame, key) {
            leaf_first.push(v.display_string());
        }
        cursor = next;
    }
    leaf_first.reverse();
    leaf_first
}

fn frame_lookup(frame: &Value, key: Sym) -> Option<Value> {
    match frame {
        Value::Record(r) if r.tag().name() == "$mark-frame" => {
            let fields = r.fields();
            assoc_lookup(fields.first()?, key)
        }
        Value::Pair(_) => assoc_entry(frame, key),
        _ => None,
    }
}

/// Looks `key` up in an `eq?`-keyed association list.
fn assoc_lookup(list: &Value, key: Sym) -> Option<Value> {
    let mut cursor = *list;
    while let Value::Pair(p) = cursor {
        let (entry, next) = p.car_cdr();
        if let Some(v) = assoc_entry(&entry, key) {
            return Some(v);
        }
        cursor = next;
    }
    None
}

fn assoc_entry(entry: &Value, key: Sym) -> Option<Value> {
    if let Value::Pair(e) = entry {
        let (k, v) = e.car_cdr();
        if matches!(k, Value::Sym(s) if s == key) {
            return Some(v);
        }
    }
    None
}

/// Profiles `run` (after loading `setup`) by sampling at every
/// fuel-slice suspension.
///
/// # Errors
///
/// Returns compile/runtime errors as strings.
pub fn profile_source(
    config: EngineConfig,
    setup: &str,
    run: &str,
    fuel: u64,
) -> Result<Profile, String> {
    let mut host = WorkerHost::new(config);
    if !setup.is_empty() {
        host.load(setup).map_err(|e| e.to_string())?;
    }
    let mut engine = host.spawn(run).map_err(|e| e.to_string())?;
    let mut profile = Profile::default();
    loop {
        match engine.run(fuel) {
            RunResult::Suspended(next, _) => {
                if let Some(marks) = next.suspended_marks() {
                    profile.add(extract_stack(&marks, PROFILE_KEY));
                }
                engine = next;
            }
            RunResult::Done(..) => return Ok(profile),
            RunResult::Failed(e, _) => return Err(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_order_matches_continuation_mark_set_to_list() {
        // Ground truth from the Scheme side: innermost mark first.
        let mut engine = cm_core::Engine::new(EngineConfig::full());
        let v = engine
            .eval_to_string(
                "(with-continuation-mark 'profile-key 'a
                   (car (cons (with-continuation-mark 'profile-key 'b
                                (continuation-mark-set->list
                                  (current-continuation-marks) 'profile-key))
                              '())))",
            )
            .unwrap();
        assert_eq!(v, "(b a)");
    }

    #[test]
    fn profile_reconstructs_nested_stacks_from_marks() {
        let profile = profile_source(EngineConfig::full(), DEMO_SOURCE, DEMO_RUN, 300).unwrap();
        assert!(profile.samples > 10, "only {} samples", profile.samples);
        assert!(!profile.stacks.is_empty());
        for stack in profile.stacks.keys() {
            assert_eq!(stack[0], "main", "root must be main: {stack:?}");
            // fib recursion shows up as repeated interior frames.
            for frame in &stack[1..] {
                assert!(frame == "fib" || frame == "base", "odd frame {frame}");
            }
        }
        assert!(
            profile.stacks.keys().any(|s| s.len() > 3),
            "expected deep fib stacks, got {:?}",
            profile.stacks.keys().map(Vec::len).max()
        );
        let collapsed = profile.to_collapsed();
        assert!(collapsed.lines().all(|l| {
            l.starts_with("main") && l.rsplit(' ').next().unwrap().parse::<u64>().is_ok()
        }));
        let json = profile.to_json("demo");
        assert_eq!(
            json.get("samples").and_then(Json::as_u64),
            Some(profile.samples)
        );
    }

    #[test]
    fn extract_stack_reads_plain_pairs_too() {
        let entry = |name: &str| Value::cons(Value::Sym(sym(PROFILE_KEY)), Value::Sym(sym(name)));
        let marks = Value::list([entry("leaf"), entry("root")]);
        assert_eq!(extract_stack(&marks, PROFILE_KEY), vec!["root", "leaf"]);
    }
}
