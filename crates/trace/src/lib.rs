//! `cm-trace` — observability for the continuation-marks engine.
//!
//! Three views of a running program, all built on machinery the paper
//! already motivates:
//!
//! * **Journal** ([`run_journaled`], [`chrome::journal_to_json`]) —
//!   the VM's ring-buffer event journal
//!   ([`cm_vm::TraceJournal`], enabled by
//!   [`MachineConfig::trace`](cm_vm::MachineConfig)) records every
//!   continuation-machinery operation (capture, reify, underflow,
//!   fuse/copy, attachment push/pop, winder enter/leave, suspension,
//!   resume, …) with its step index and frame depth, and is
//!   consistency-checked against [`cm_vm::MachineStats`]: the journal
//!   and the counters are fed by the same hook, so any disagreement is
//!   a VM bug.
//! * **Profile** ([`profile`]) — a sampling profiler that reconstructs
//!   stacks from `'profile-key` continuation marks and emits collapsed
//!   stacks for flamegraph tooling.
//! * **Timeline** ([`chrome::spans_to_chrome`]) — Chrome `trace_event`
//!   export of the wall-clock spans `cm-engines` records for engine
//!   runs, scheduler slices, and pool workers.
//!
//! The `cm-trace` binary drives all three over the paper's §2 examples
//! and the benchmark workloads.

pub mod chrome;
pub mod json;
pub mod profile;

use cm_core::{Engine, EngineConfig};
use cm_torture::Target;
use cm_vm::{MachineStats, TraceJournal};

pub use chrome::{journal_to_chrome, journal_to_json, spans_to_chrome, JOURNAL_SCHEMA};
pub use json::Json;
pub use profile::{extract_stack, profile_source, Profile, PROFILE_KEY};

/// The outcome of one traced run: final printed value, stats, and the
/// journal snapshot, already consistency-verified.
#[derive(Debug)]
pub struct JournaledRun {
    /// The target's name.
    pub name: String,
    /// `display` of the final value.
    pub output: String,
    /// Counters at the end of the run.
    pub stats: MachineStats,
    /// The journal (counts + retained ring).
    pub journal: TraceJournal,
}

/// Runs a torture [`Target`] with tracing enabled and verifies that
/// the journal's per-kind totals equal the stats counters.
///
/// # Errors
///
/// Reports compile/runtime errors, output mismatches against the
/// target's expectation, and counter/journal inconsistencies.
pub fn run_journaled(mut config: EngineConfig, target: &Target) -> Result<JournaledRun, String> {
    config.machine.trace = true;
    let mut engine = Engine::new(config);
    if !target.setup.is_empty() {
        engine
            .eval(&target.setup)
            .map_err(|e| format!("{}: setup failed: {e}", target.name))?;
    }
    let output = engine
        .eval_to_string(&target.run)
        .map_err(|e| format!("{}: run failed: {e}", target.name))?;
    if let Some(expected) = &target.expected {
        if &output != expected {
            return Err(format!(
                "{}: expected {expected}, got {output}",
                target.name
            ));
        }
    }
    let stats = engine.stats();
    let machine = engine.machine_mut();
    machine
        .journal
        .verify_consistency(&stats)
        .map_err(|e| format!("{}: {e}", target.name))?;
    Ok(JournaledRun {
        name: target.name.clone(),
        output,
        stats,
        journal: std::mem::take(&mut machine.journal),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_torture::torture_targets;

    #[test]
    fn journaled_run_verifies_a_section2_example() {
        let target = &torture_targets(true)[0];
        let run = run_journaled(EngineConfig::full(), target).unwrap();
        assert!(!run.journal.is_empty(), "no events journaled");
        assert!(run.stats.steps_executed > 0);
        let doc = journal_to_json(&run.name, &run.journal);
        chrome::validate_journal(&doc).unwrap();
    }

    #[test]
    fn run_journaled_rejects_wrong_expectations() {
        let mut target = torture_targets(true)[0].clone();
        target.expected = Some("definitely-not-this".into());
        assert!(run_journaled(EngineConfig::full(), &target).is_err());
    }
}
