//! Counter/journal consistency over the whole corpus: every §2 example
//! and every workload target, under each of the eight engine
//! configurations (the paper's seven plus the mark-flow optimizer), must end a traced run with the journal's
//! per-kind totals exactly equal to the [`cm_vm::MachineStats`]
//! counters. Both are fed by the machine's single trace hook, so any
//! disagreement means an operation was counted without being journaled
//! (or vice versa) — a VM bug, not a tolerance issue.

use cm_torture::{engine_configs, torture_targets};
use cm_trace::run_journaled;
use cm_vm::{TraceKind, TRACE_KIND_COUNT};

#[test]
fn every_stats_field_equals_its_journal_count_across_all_configs() {
    let mut runs = 0;
    for (config_name, config) in engine_configs() {
        for target in torture_targets(true) {
            let run = run_journaled(config.clone(), &target)
                .unwrap_or_else(|e| panic!("{config_name}: {e}"));
            let s = &run.stats;
            // The full counter↔kind contract, spelled out field by
            // field (WinderLeave is journal-only: a faulting winder
            // enters but never leaves, so no counter can match it).
            let expect = [
                (TraceKind::Capture, s.captures),
                (TraceKind::Reify, s.reifications),
                (TraceKind::Underflow, s.underflows),
                (TraceKind::Fuse, s.fusions),
                (TraceKind::Copy, s.copies),
                (TraceKind::OverflowSplit, s.overflow_splits),
                (TraceKind::AttachPush, s.attachments_pushed),
                (TraceKind::AttachPop, s.attachments_popped),
                (TraceKind::MarkStackPush, s.mark_stack_pushes),
                (TraceKind::WinderEnter, s.winders_run),
                (TraceKind::PrimCall, s.prim_calls),
                (TraceKind::InjectedFault, s.injected_faults),
                (TraceKind::Step, s.steps_executed),
                (TraceKind::Suspend, s.suspensions),
                (TraceKind::Resume, s.resumes),
                (TraceKind::Alloc, s.allocations),
                (TraceKind::GcCollect, s.collections),
                (TraceKind::Snapshot, s.snapshots),
                (TraceKind::Restore, s.restores),
            ];
            // bytes_live / bytes_live_peak are gauges, overwritten per
            // collection; they have no TraceKind and are excluded here.
            assert_eq!(expect.len(), TRACE_KIND_COUNT - 1);
            for (kind, counter) in expect {
                assert_eq!(
                    run.journal.count_of(kind),
                    counter,
                    "{config_name}/{}: {} journal total diverged from its counter",
                    run.name,
                    kind.label(),
                );
            }
            assert!(
                s.steps_executed > 0,
                "{config_name}/{}: empty run",
                run.name
            );
            runs += 1;
        }
    }
    // 8 configs x the quick corpus; a shrunk corpus would quietly
    // weaken this test.
    assert!(runs >= 80, "only {runs} corpus runs executed");
}

#[test]
fn journal_ring_events_respect_capacity_and_ordering() {
    let (_, config) = engine_configs().remove(0);
    for target in torture_targets(true) {
        let run = run_journaled(config.clone(), &target).unwrap();
        assert!(run.journal.len() <= run.journal.capacity());
        let steps: Vec<u64> = run.journal.events().map(|e| e.step).collect();
        assert!(
            steps.windows(2).all(|w| w[0] <= w[1]),
            "{}: journal steps not monotone",
            run.name
        );
        let total: u64 = TraceKind::ALL
            .iter()
            .filter(|k| **k != TraceKind::Step)
            .map(|k| run.journal.count_of(*k))
            .sum();
        assert_eq!(
            total,
            run.journal.len() as u64 + run.journal.dropped(),
            "{}: retained + dropped must equal non-step total",
            run.name
        );
    }
}
