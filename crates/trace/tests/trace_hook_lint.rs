//! Grep-based lint guarding the observability contract: the VM's trace
//! hooks must be live in release builds. A hook gated behind
//! `debug_assertions` would make release-mode journals silently
//! incomplete — counters and journal would still agree with each other
//! (both fed by the same hook), so only source inspection can catch it.

use std::fs;
use std::path::{Path, PathBuf};

/// Every journalled operation goes through this single hook.
const HOOK: &str = ".trace(TraceKind::";

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn trace_hooks_are_not_debug_only() {
    let vm_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("../vm/src");
    let mut files = Vec::new();
    rs_files(&vm_src, &mut files);
    files.sort();
    let mut sites = 0;
    let mut offenders = Vec::new();
    for f in &files {
        let text = fs::read_to_string(f).unwrap_or_else(|e| panic!("read {}: {e}", f.display()));
        let lines: Vec<&str> = text.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            let code = line.split("//").next().unwrap_or("");
            if !code.contains(HOOK) && !code.contains("fn trace(") {
                continue;
            }
            sites += 1;
            // The hook call (and the hook definition itself) must not
            // be conditioned on debug_assertions — neither inline
            // (`if cfg!(...)`) nor by an attribute within the few
            // preceding lines.
            let window_start = idx.saturating_sub(3);
            for (off, probe) in lines[window_start..=idx].iter().enumerate() {
                if probe
                    .split("//")
                    .next()
                    .unwrap_or("")
                    .contains("debug_assertions")
                {
                    offenders.push(format!(
                        "{}:{}: trace hook near debug_assertions gate (line {}): {}",
                        f.display(),
                        idx + 1,
                        window_start + off + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    // 31 call sites + the hook definition at the time of writing; a big
    // drop means instrumentation was removed or renamed away from the
    // pattern this lint greps for.
    assert!(
        sites >= 25,
        "only {sites} trace-hook sites found under {} — did the hook get renamed?",
        vm_src.display()
    );
    assert!(
        offenders.is_empty(),
        "trace hooks must be live in release builds:\n{}",
        offenders.join("\n")
    );
}
