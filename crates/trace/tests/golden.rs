//! Golden-file tests pinning down two outward-facing text formats:
//!
//! * `Code::disassemble` — tooling (and the paper's figures) read the
//!   listings, so mnemonic spelling and operand layout are contract.
//!   Two configs of the same program pin the attachment-specialization
//!   difference: `full` emits the specialized attachment instructions,
//!   `no_attachment_opt` falls back to uniform calls.
//! * The `cm-trace` JSON schemas (journal report, Chrome trace_event,
//!   profile) — downstream viewers parse these files.
//!
//! Regenerate after an intentional change with:
//! `UPDATE_GOLDEN=1 cargo test -p cm-trace --test golden`

use cm_core::{Engine, EngineConfig};
use cm_engines::Span;
use cm_trace::{journal_to_json, spans_to_chrome, Profile};
use cm_vm::{TraceJournal, TraceKind};
use std::path::PathBuf;

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    if expected != actual {
        let diff_at = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or(expected.lines().count().min(actual.lines().count()), |n| n);
        panic!(
            "{name} diverged from golden (first differing line {}):\n\
             --- golden ---\n{}\n--- actual ---\n{}\n\
             If the change is intentional, regenerate with UPDATE_GOLDEN=1.",
            diff_at + 1,
            expected
                .lines()
                .skip(diff_at.saturating_sub(2))
                .take(6)
                .collect::<Vec<_>>()
                .join("\n"),
            actual
                .lines()
                .skip(diff_at.saturating_sub(2))
                .take(6)
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

/// A program exercising the instructions the paper's compiler work is
/// about: attachment push/consume, marks, a non-tail and a tail call.
const DISASM_SOURCE: &str = "
(define (count n acc)
  (if (zero? n)
      acc
      (count (- n 1)
             (with-continuation-mark 'depth n
               (+ acc (car (continuation-mark-set->list
                             (current-continuation-marks) 'depth)))))))";

fn disassembly(config: EngineConfig) -> String {
    let mut engine = Engine::new(config);
    let code = engine.compile_only(DISASM_SOURCE).unwrap();
    code.disassemble()
}

#[test]
fn disassemble_full_config_is_stable() {
    check_golden("disassemble_full.txt", &disassembly(EngineConfig::full()));
}

#[test]
fn disassemble_without_attachment_opt_is_stable() {
    check_golden(
        "disassemble_no_attachment_opt.txt",
        &disassembly(EngineConfig::no_attachment_opt()),
    );
}

#[test]
fn journal_report_schema_is_stable() {
    let mut journal = TraceJournal::with_capacity(4);
    let script = [
        (TraceKind::Step, 1, 1),
        (TraceKind::MarkStackPush, 1, 2),
        (TraceKind::AttachPush, 2, 2),
        (TraceKind::PrimCall, 3, 2),
        (TraceKind::Capture, 4, 2),
        (TraceKind::Reify, 5, 2),
        (TraceKind::AttachPop, 6, 2),
        (TraceKind::Suspend, 7, 1),
        (TraceKind::Resume, 7, 1),
        (TraceKind::Underflow, 8, 0),
    ];
    for (kind, step, depth) in script {
        journal.record(kind, step, depth);
    }
    // 9 ring events into capacity 4: the oldest five are dropped, so
    // the golden also pins eviction behavior.
    let doc = journal_to_json("golden-demo", &journal);
    check_golden("journal_schema.json", &doc.to_string_pretty());
}

#[test]
fn chrome_trace_schema_is_stable() {
    let spans = [
        Span {
            name: "sec2-deep#0".into(),
            cat: "slice",
            tid: 0,
            start_us: 100,
            dur_us: 40,
            args: vec![("task", "0".into()), ("steps", "1000".into())],
        },
        Span {
            name: "worker-1".into(),
            cat: "worker",
            tid: 1,
            start_us: 90,
            dur_us: 900,
            args: vec![("jobs", "250".into())],
        },
    ];
    let doc = spans_to_chrome(spans.iter());
    check_golden("chrome_trace_schema.json", &doc.to_string_pretty());
}

#[test]
fn profile_schema_is_stable() {
    let mut profile = Profile::default();
    for _ in 0..3 {
        profile.add(vec!["main".into(), "fib".into(), "fib".into()]);
    }
    profile.add(vec!["main".into(), "fib".into(), "base".into()]);
    profile.add(Vec::new()); // sampled outside any instrumented frame
    check_golden(
        "profile_schema.json",
        &profile.to_json("golden-demo").to_string_pretty(),
    );
    check_golden("profile_collapsed.txt", &profile.to_collapsed());
    // The JSON stays parseable by our own parser.
    cm_trace::json::parse(&profile.to_json("golden-demo").to_string_compact()).unwrap();
}
