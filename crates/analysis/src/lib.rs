//! JVM-style bytecode verification for the continuation-marks VM.
//!
//! [`verify`] abstractly interprets a compiled [`Code`] object (recursing
//! into child codes) and rejects bytecode that could corrupt the value
//! stack or — the part specific to this system — the `marks` register
//! holding the paper's continuation *attachments* (§5–§7 of Flatt &
//! Dybvig, *Compiler and Runtime Support for Continuation Marks*, PLDI
//! 2020).
//!
//! Three families of invariants are checked:
//!
//! 1. **Stack discipline.** Every reachable path ends in
//!    `Return`/`TailCall` with a result value available; `Leave(n)`,
//!    `Pop`, `Call(argc)` and friends never pop below the frame base; and
//!    the stack depth is the same along every edge into a join point.
//! 2. **Index soundness.** `Const`, `LocalRef`/`LocalSet`, `CaptureRef`,
//!    `MakeClosure{code}`, and jump targets are all in bounds, with child
//!    codes checked against the capture counts of their `MakeClosure`
//!    sites.
//! 3. **Attachment discipline** (§7.2). `PushAttach`/`PopAttach` balance
//!    along all control paths and never leak across a return;
//!    `GetAttachPresent`/`ConsumeAttachPresent`/`SetAttach`/
//!    `CallWithAttachment` are reachable only in states where the
//!    analysis proves an attachment is present on the current conceptual
//!    frame; `ReifySetAttach { check_replace: false }` — the §7.2
//!    "consume"+"set" fusion — is legal only when the attachment is
//!    proven *absent* (i.e. after a consume); and eager-mark-stack
//!    instructions appear only under [`MarkModel::EagerMarkStack`].
//!    (The reverse direction is deliberately not checked: the machine's
//!    `marks` register coexists with the eager mark stack, and the §7.1
//!    attachment primitives compile to attachment instructions under
//!    *both* models — the eager model only changes how
//!    `with-continuation-mark` itself is lowered.)
//!
//! The abstract state per instruction offset is small: the operand-stack
//! depth above the frame base, the number of attachments the code has
//! pushed and not yet popped (`owned`), the same counter for eager mark
//! frames, and a three-point lattice describing whether the *current
//! conceptual frame* carries an attachment underneath those pushes
//! ([`Presence`]). Joins require depth and ownership to agree exactly
//! (mismatch is a verification error, as in the JVM) and meet `Presence`
//! to [`Presence::Dynamic`].

pub mod markflow;

use std::fmt;

use cm_vm::{Code, Instr, MarkModel};

/// Three-point presence lattice for the current frame's attachment.
///
/// `Present`/`Absent` are proofs; `Dynamic` is "unknown", the state at
/// function entry (the caller may or may not have reified an attachment
/// for this frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// An attachment is proven present on the current conceptual frame.
    Present,
    /// Proven absent (e.g. just consumed).
    Absent,
    /// Statically unknown.
    Dynamic,
}

impl Presence {
    fn join(self, other: Presence) -> Presence {
        if self == other {
            self
        } else {
            Presence::Dynamic
        }
    }
}

/// What a [`Violation`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A constant-pool index is out of bounds.
    ConstOutOfBounds,
    /// A `LocalRef`/`LocalSet` slot is outside the frame's live region.
    LocalOutOfBounds,
    /// A `CaptureRef` index exceeds the closure's capture count.
    CaptureOutOfBounds,
    /// A `MakeClosure` child-code index is out of bounds.
    CodeIndexOutOfBounds,
    /// A jump target is outside the instruction sequence.
    JumpOutOfBounds,
    /// An instruction would pop below the frame base.
    StackUnderflow,
    /// Two control-flow edges reach the same offset with different
    /// stack depths or attachment ownership.
    JoinMismatch,
    /// Control can run past the last instruction.
    FallsOffEnd,
    /// `PushAttach`/`PopAttach` (or the eager frame pair) do not balance,
    /// or an owned attachment leaks across `Return`/`TailCall`.
    UnbalancedAttachment,
    /// An instruction requiring a statically-proven attachment
    /// (`GetAttachPresent`, `ConsumeAttachPresent`, `SetAttach`,
    /// `CallWithAttachment`) is reachable without that proof.
    AttachmentNotProven,
    /// `ReifySetAttach { check_replace: false }` without a preceding
    /// consume proving the attachment absent (§7.2 fusion legality).
    IllegalFusion,
    /// A reifying or dynamically-checking attachment instruction executed
    /// while this code still owns `PushAttach`ed attachments, which the
    /// runtime check would misattribute to the frame.
    OwnedAttachmentInterference,
    /// An instruction belonging to the other mark model.
    WrongMarkModel,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::ConstOutOfBounds => "const index out of bounds",
            ViolationKind::LocalOutOfBounds => "local index out of bounds",
            ViolationKind::CaptureOutOfBounds => "capture index out of bounds",
            ViolationKind::CodeIndexOutOfBounds => "child-code index out of bounds",
            ViolationKind::JumpOutOfBounds => "jump target out of bounds",
            ViolationKind::StackUnderflow => "stack underflow",
            ViolationKind::JoinMismatch => "inconsistent state at join",
            ViolationKind::FallsOffEnd => "control falls off the end",
            ViolationKind::UnbalancedAttachment => "unbalanced attachment push/pop",
            ViolationKind::AttachmentNotProven => "attachment presence not proven",
            ViolationKind::IllegalFusion => "consume+set fusion without consume",
            ViolationKind::OwnedAttachmentInterference => {
                "owned attachment interferes with dynamic check"
            }
            ViolationKind::WrongMarkModel => "instruction from the wrong mark model",
        };
        f.write_str(s)
    }
}

/// A single verification failure, located by code path and offset.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `/`-joined names of the code objects from the root down.
    pub code_path: String,
    /// Instruction offset within that code object.
    pub offset: usize,
    /// The invariant violated.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {:4}: {}: {}",
            self.code_path, self.offset, self.kind, self.detail
        )
    }
}

/// Abstract machine state at one instruction offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsState {
    /// Operand-stack depth above the frame base.
    depth: u32,
    /// Attachments pushed by this code and not yet popped/consumed.
    owned: u32,
    /// Eager mark-stack frames pushed by this code and not yet popped.
    eager_owned: u32,
    /// The frame's own attachment, underneath any `owned` pushes.
    head: Presence,
}

impl AbsState {
    /// Is an attachment statically known to be on top of `marks`?
    fn proven_present(&self) -> bool {
        self.owned > 0 || self.head == Presence::Present
    }

    /// Removes the top attachment: an owned push if any, else the frame's.
    fn consume_one(&mut self) {
        if self.owned > 0 {
            self.owned -= 1;
        } else {
            self.head = Presence::Absent;
        }
    }
}

/// Verifies `code` (and, recursively, its child codes) against the
/// instruction set's invariants under the given mark model.
///
/// # Errors
///
/// Returns every [`Violation`] found; an empty `Ok(())` means the code is
/// well-formed.
pub fn verify(code: &Code, model: MarkModel) -> Result<(), Vec<Violation>> {
    // The root code runs without a closure: no captures are addressable.
    verify_instantiated(code, 0, model)
}

/// Like [`verify`], but for a code object instantiated as a closure with
/// `captures` addressable capture slots. Needed when verifying bytecode
/// recovered from a durable snapshot: a closure's code can outlive the
/// parent code whose `MakeClosure` site would otherwise supply the
/// capture bound.
///
/// # Errors
///
/// Returns every [`Violation`] found, exactly as [`verify`] does.
pub fn verify_instantiated(
    code: &Code,
    captures: u32,
    model: MarkModel,
) -> Result<(), Vec<Violation>> {
    let mut v = Verifier {
        model,
        violations: Vec::new(),
    };
    v.verify_code(code, captures, &mut vec![code.name.clone()]);
    if v.violations.is_empty() {
        Ok(())
    } else {
        Err(v.violations)
    }
}

struct Verifier {
    model: MarkModel,
    violations: Vec<Violation>,
}

impl Verifier {
    fn report(&mut self, path: &[String], offset: usize, kind: ViolationKind, detail: String) {
        self.violations.push(Violation {
            code_path: path.join("/"),
            offset,
            kind,
            detail,
        });
    }

    fn verify_code(&mut self, code: &Code, captures: u32, path: &mut Vec<String>) {
        self.verify_body(code, captures, path);
        // Child codes are checked against the *smallest* capture count any
        // MakeClosure site instantiates them with — a CaptureRef must be in
        // bounds for every instantiation. Unreferenced children get the
        // permissive bound (they are dead, but their other invariants still
        // hold or fail on their own).
        let mut child_caps: Vec<Option<u32>> = vec![None; code.codes.len()];
        for instr in &code.instrs {
            if let Instr::MakeClosure {
                code: ci,
                captures: n,
            } = instr
            {
                if let Some(slot) = child_caps.get_mut(*ci as usize) {
                    let n = u32::from(*n);
                    *slot = Some(slot.map_or(n, |prev: u32| prev.min(n)));
                }
            }
        }
        for (i, child) in code.codes.iter().enumerate() {
            let caps = child_caps[i].unwrap_or(u32::MAX);
            path.push(child.name.clone());
            self.verify_code(child, caps, path);
            path.pop();
        }
    }

    #[allow(clippy::too_many_lines)]
    fn verify_body(&mut self, code: &Code, captures: u32, path: &[String]) {
        let n = code.instrs.len();
        let entry = AbsState {
            depth: u32::from(code.arity_required) + u32::from(code.rest),
            owned: 0,
            eager_owned: 0,
            head: Presence::Dynamic,
        };
        if n == 0 {
            self.report(
                path,
                0,
                ViolationKind::FallsOffEnd,
                "empty instruction sequence".into(),
            );
            return;
        }
        let mut states: Vec<Option<AbsState>> = vec![None; n];
        states[0] = Some(entry);
        let mut work = vec![0usize];
        // Report each (offset, kind) at most once so loops don't spam.
        let mut seen: Vec<(usize, ViolationKind)> = Vec::new();
        let mut report_once = |me: &mut Self, off: usize, kind: ViolationKind, detail: String| {
            if !seen.contains(&(off, kind)) {
                seen.push((off, kind));
                me.report(path, off, kind, detail);
            }
        };

        while let Some(pc) = work.pop() {
            let mut st = states[pc].expect("worklist entry without state");
            let instr = &code.instrs[pc];
            let eager = self.model == MarkModel::EagerMarkStack;

            // Mark-model gating first; a wrong-model instruction is still
            // interpreted for its stack effect so later checks stay useful.
            // Attachment instructions are legal under both models (the
            // marks register coexists with the eager mark stack), so only
            // the eager instructions are gated.
            let is_eager_instr = matches!(
                instr,
                Instr::EagerPushFrame
                    | Instr::EagerPopFrame
                    | Instr::EagerMarkSet
                    | Instr::EagerCallShared(_)
            );
            if is_eager_instr && !eager {
                report_once(
                    self,
                    pc,
                    ViolationKind::WrongMarkModel,
                    format!("{instr:?} requires MarkModel::EagerMarkStack"),
                );
            }

            // `need` values popped before `push` values are pushed; branch /
            // terminal instructions are handled explicitly below.
            let mut succs: Vec<usize> = Vec::new();
            let mut terminal = false;
            macro_rules! need {
                ($k:expr, $what:expr) => {{
                    let k = $k as u32;
                    if st.depth < k {
                        report_once(
                            self,
                            pc,
                            ViolationKind::StackUnderflow,
                            format!(
                                "{} needs {} value(s), stack depth is {}",
                                $what, k, st.depth
                            ),
                        );
                        // Unsound to keep walking this path.
                        continue;
                    }
                    st.depth -= k;
                }};
            }

            match instr {
                Instr::Const(i) => {
                    if usize::from(*i) >= code.consts.len() {
                        report_once(
                            self,
                            pc,
                            ViolationKind::ConstOutOfBounds,
                            format!("Const({i}) but {} constant(s)", code.consts.len()),
                        );
                    }
                    st.depth += 1;
                }
                Instr::LocalRef(i) => {
                    if u32::from(*i) >= st.depth {
                        report_once(
                            self,
                            pc,
                            ViolationKind::LocalOutOfBounds,
                            format!("LocalRef({i}) with only {} slot(s) live", st.depth),
                        );
                    }
                    st.depth += 1;
                }
                Instr::LocalSet(i) => {
                    need!(1, "LocalSet");
                    if u32::from(*i) >= st.depth {
                        report_once(
                            self,
                            pc,
                            ViolationKind::LocalOutOfBounds,
                            format!("LocalSet({i}) with only {} slot(s) live", st.depth),
                        );
                    }
                }
                Instr::CaptureRef(i) => {
                    if u32::from(*i) >= captures {
                        report_once(
                            self,
                            pc,
                            ViolationKind::CaptureOutOfBounds,
                            format!("CaptureRef({i}) but closure has {captures} capture(s)"),
                        );
                    }
                    st.depth += 1;
                }
                Instr::GlobalRef(_) => st.depth += 1,
                Instr::GlobalSet(_) => need!(1, "GlobalSet"),
                Instr::MakeClosure { code: ci, captures } => {
                    if usize::from(*ci) >= code.codes.len() {
                        report_once(
                            self,
                            pc,
                            ViolationKind::CodeIndexOutOfBounds,
                            format!("MakeClosure code {ci} but {} child(ren)", code.codes.len()),
                        );
                    }
                    need!(*captures, "MakeClosure");
                    st.depth += 1;
                }
                Instr::Jump(t) => {
                    terminal = true;
                    if (*t as usize) < n {
                        succs.push(*t as usize);
                    } else {
                        report_once(
                            self,
                            pc,
                            ViolationKind::JumpOutOfBounds,
                            format!("Jump({t}) but {n} instruction(s)"),
                        );
                    }
                }
                Instr::JumpIfFalse(t) => {
                    need!(1, "JumpIfFalse");
                    if (*t as usize) < n {
                        succs.push(*t as usize);
                    } else {
                        report_once(
                            self,
                            pc,
                            ViolationKind::JumpOutOfBounds,
                            format!("JumpIfFalse({t}) but {n} instruction(s)"),
                        );
                    }
                }
                Instr::Leave(k) => {
                    need!(u32::from(*k) + 1, "Leave");
                    st.depth += 1;
                }
                Instr::Pop => need!(1, "Pop"),
                Instr::Call(argc) => {
                    need!(u32::from(*argc) + 1, "Call");
                    st.depth += 1;
                }
                Instr::TailCall(argc) => {
                    need!(u32::from(*argc) + 1, "TailCall");
                    terminal = true;
                    if st.owned > 0 || st.eager_owned > 0 {
                        report_once(
                            self,
                            pc,
                            ViolationKind::UnbalancedAttachment,
                            format!(
                                "TailCall leaks {} attachment(s) / {} eager frame(s)",
                                st.owned, st.eager_owned
                            ),
                        );
                    }
                }
                Instr::CallWithAttachment(argc) => {
                    need!(u32::from(*argc) + 1, "CallWithAttachment");
                    if !st.proven_present() {
                        report_once(
                            self,
                            pc,
                            ViolationKind::AttachmentNotProven,
                            "CallWithAttachment without a pushed or proven attachment".into(),
                        );
                    } else {
                        st.consume_one();
                    }
                    st.depth += 1;
                }
                Instr::EagerCallShared(argc) => {
                    need!(u32::from(*argc) + 1, "EagerCallShared");
                    if st.eager_owned == 0 {
                        report_once(
                            self,
                            pc,
                            ViolationKind::UnbalancedAttachment,
                            "EagerCallShared without a pushed eager mark frame".into(),
                        );
                    } else {
                        st.eager_owned -= 1;
                    }
                    st.depth += 1;
                }
                Instr::Return => {
                    need!(1, "Return");
                    terminal = true;
                    if st.owned > 0 || st.eager_owned > 0 {
                        report_once(
                            self,
                            pc,
                            ViolationKind::UnbalancedAttachment,
                            format!(
                                "Return leaks {} attachment(s) / {} eager frame(s)",
                                st.owned, st.eager_owned
                            ),
                        );
                    }
                }
                Instr::PrimCall(op, argc) => {
                    need!(u32::from(*argc), op.name());
                    st.depth += 1;
                }
                Instr::PushAttach => {
                    need!(1, "PushAttach");
                    st.owned += 1;
                }
                Instr::PopAttach => {
                    if st.owned == 0 {
                        report_once(
                            self,
                            pc,
                            ViolationKind::UnbalancedAttachment,
                            "PopAttach without a matching PushAttach".into(),
                        );
                    } else {
                        st.owned -= 1;
                    }
                }
                Instr::SetAttach => {
                    need!(1, "SetAttach");
                    if !st.proven_present() {
                        report_once(
                            self,
                            pc,
                            ViolationKind::AttachmentNotProven,
                            "SetAttach replaces an attachment that is not proven present".into(),
                        );
                    }
                    // Replacement keeps presence: still present afterwards.
                }
                Instr::ReifySetAttach { check_replace } => {
                    need!(1, "ReifySetAttach");
                    if st.owned > 0 {
                        report_once(
                            self,
                            pc,
                            ViolationKind::OwnedAttachmentInterference,
                            format!(
                                "ReifySetAttach with {} owned attachment(s) outstanding",
                                st.owned
                            ),
                        );
                    } else if !check_replace && st.head != Presence::Absent {
                        report_once(
                            self,
                            pc,
                            ViolationKind::IllegalFusion,
                            "ReifySetAttach{check_replace: false} is only legal after a \
                             consume proves the attachment absent (§7.2)"
                                .into(),
                        );
                    }
                    st.head = Presence::Present;
                }
                Instr::GetAttachDyn | Instr::ConsumeAttachDyn => {
                    need!(1, instr_name(instr));
                    if st.owned > 0 {
                        report_once(
                            self,
                            pc,
                            ViolationKind::OwnedAttachmentInterference,
                            format!(
                                "{} would observe this code's own pushed attachment",
                                instr_name(instr)
                            ),
                        );
                    }
                    if matches!(instr, Instr::ConsumeAttachDyn) {
                        st.head = Presence::Absent;
                    }
                    st.depth += 1;
                }
                Instr::GetAttachPresent | Instr::ConsumeAttachPresent => {
                    if !st.proven_present() {
                        report_once(
                            self,
                            pc,
                            ViolationKind::AttachmentNotProven,
                            format!("{} without a presence proof", instr_name(instr)),
                        );
                    } else if matches!(instr, Instr::ConsumeAttachPresent) {
                        st.consume_one();
                    }
                    st.depth += 1;
                }
                Instr::CurrentAttachments => st.depth += 1,
                Instr::EagerPushFrame => st.eager_owned += 1,
                Instr::EagerPopFrame => {
                    if st.eager_owned == 0 {
                        report_once(
                            self,
                            pc,
                            ViolationKind::UnbalancedAttachment,
                            "EagerPopFrame without a matching EagerPushFrame".into(),
                        );
                    } else {
                        st.eager_owned -= 1;
                    }
                }
                Instr::EagerMarkSet => need!(2, "EagerMarkSet"),
            }

            if !terminal {
                if pc + 1 < n {
                    succs.push(pc + 1);
                } else {
                    report_once(
                        self,
                        pc,
                        ViolationKind::FallsOffEnd,
                        format!("{} can run past the last instruction", instr_name(instr)),
                    );
                }
            }

            for succ in succs {
                match &mut states[succ] {
                    slot @ None => {
                        *slot = Some(st);
                        work.push(succ);
                    }
                    Some(prev) => {
                        if prev.depth != st.depth
                            || prev.owned != st.owned
                            || prev.eager_owned != st.eager_owned
                        {
                            report_once(
                                self,
                                succ,
                                ViolationKind::JoinMismatch,
                                format!(
                                    "edge from {} arrives with depth {} / owned {} / eager {}, \
                                     join has depth {} / owned {} / eager {}",
                                    pc,
                                    st.depth,
                                    st.owned,
                                    st.eager_owned,
                                    prev.depth,
                                    prev.owned,
                                    prev.eager_owned
                                ),
                            );
                        } else {
                            let joined = prev.head.join(st.head);
                            if joined != prev.head {
                                prev.head = joined;
                                work.push(succ);
                            }
                        }
                    }
                }
            }
        }
    }
}

fn instr_name(i: &Instr) -> &'static str {
    match i {
        Instr::Const(_) => "Const",
        Instr::LocalRef(_) => "LocalRef",
        Instr::LocalSet(_) => "LocalSet",
        Instr::CaptureRef(_) => "CaptureRef",
        Instr::GlobalRef(_) => "GlobalRef",
        Instr::GlobalSet(_) => "GlobalSet",
        Instr::MakeClosure { .. } => "MakeClosure",
        Instr::Jump(_) => "Jump",
        Instr::JumpIfFalse(_) => "JumpIfFalse",
        Instr::Leave(_) => "Leave",
        Instr::Pop => "Pop",
        Instr::Call(_) => "Call",
        Instr::TailCall(_) => "TailCall",
        Instr::CallWithAttachment(_) => "CallWithAttachment",
        Instr::Return => "Return",
        Instr::PrimCall(..) => "PrimCall",
        Instr::PushAttach => "PushAttach",
        Instr::PopAttach => "PopAttach",
        Instr::SetAttach => "SetAttach",
        Instr::ReifySetAttach { .. } => "ReifySetAttach",
        Instr::GetAttachDyn => "GetAttachDyn",
        Instr::ConsumeAttachDyn => "ConsumeAttachDyn",
        Instr::GetAttachPresent => "GetAttachPresent",
        Instr::ConsumeAttachPresent => "ConsumeAttachPresent",
        Instr::CurrentAttachments => "CurrentAttachments",
        Instr::EagerPushFrame => "EagerPushFrame",
        Instr::EagerPopFrame => "EagerPopFrame",
        Instr::EagerMarkSet => "EagerMarkSet",
        Instr::EagerCallShared(_) => "EagerCallShared",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_vm::{PrimOp, Value};
    use std::rc::Rc;

    fn code(instrs: Vec<Instr>) -> Code {
        Code::build("t", 0, false, instrs, vec![Value::fixnum(1)], vec![])
    }

    fn expect_kind(c: &Code, model: MarkModel, kind: ViolationKind) {
        let err = verify(c, model).expect_err("expected a violation");
        assert!(
            err.iter().any(|v| v.kind == kind),
            "expected {kind:?}, got: {err:?}"
        );
    }

    #[test]
    fn accepts_minimal_code() {
        let c = code(vec![Instr::Const(0), Instr::Return]);
        verify(&c, MarkModel::Attachments).unwrap();
    }

    #[test]
    fn accepts_balanced_attachment_region() {
        let c = code(vec![
            Instr::Const(0),
            Instr::PushAttach,
            Instr::CurrentAttachments,
            Instr::PopAttach,
            Instr::Return,
        ]);
        verify(&c, MarkModel::Attachments).unwrap();
    }

    #[test]
    fn rejects_const_out_of_bounds() {
        let c = code(vec![Instr::Const(7), Instr::Return]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::ConstOutOfBounds);
    }

    #[test]
    fn rejects_local_out_of_bounds() {
        let c = code(vec![Instr::LocalRef(3), Instr::Return]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::LocalOutOfBounds);
    }

    #[test]
    fn rejects_jump_out_of_bounds() {
        let c = code(vec![Instr::Const(0), Instr::Jump(99)]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::JumpOutOfBounds);
    }

    #[test]
    fn rejects_stack_underflow() {
        let c = code(vec![Instr::Pop, Instr::Const(0), Instr::Return]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::StackUnderflow);
    }

    #[test]
    fn rejects_return_without_value() {
        let c = code(vec![Instr::Return]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::StackUnderflow);
    }

    #[test]
    fn rejects_falling_off_the_end() {
        let c = code(vec![Instr::Const(0)]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::FallsOffEnd);
    }

    #[test]
    fn rejects_depth_mismatch_at_join() {
        // Branch pushes one extra value on one arm.
        let c = code(vec![
            Instr::Const(0),
            Instr::JumpIfFalse(4),
            Instr::Const(0),
            Instr::Const(0), // then-arm: depth 2 at join
            Instr::Const(0), // join; else-arm arrives with depth 0
            Instr::Return,
        ]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::JoinMismatch);
    }

    #[test]
    fn rejects_unbalanced_push_attach() {
        let c = code(vec![
            Instr::Const(0),
            Instr::PushAttach,
            Instr::Const(0),
            Instr::Return,
        ]);
        expect_kind(
            &c,
            MarkModel::Attachments,
            ViolationKind::UnbalancedAttachment,
        );
    }

    #[test]
    fn rejects_pop_attach_without_push() {
        let c = code(vec![Instr::PopAttach, Instr::Const(0), Instr::Return]);
        expect_kind(
            &c,
            MarkModel::Attachments,
            ViolationKind::UnbalancedAttachment,
        );
    }

    #[test]
    fn rejects_get_attach_present_without_proof() {
        let c = code(vec![Instr::GetAttachPresent, Instr::Return]);
        expect_kind(
            &c,
            MarkModel::Attachments,
            ViolationKind::AttachmentNotProven,
        );
    }

    #[test]
    fn accepts_get_attach_present_under_push() {
        let c = code(vec![
            Instr::Const(0),
            Instr::PushAttach,
            Instr::GetAttachPresent,
            Instr::Leave(0),
            Instr::PopAttach,
            Instr::Return,
        ]);
        verify(&c, MarkModel::Attachments).unwrap();
    }

    #[test]
    fn rejects_unproven_fused_reify_set() {
        let c = code(vec![
            Instr::Const(0),
            Instr::ReifySetAttach {
                check_replace: false,
            },
            Instr::Const(0),
            Instr::Return,
        ]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::IllegalFusion);
    }

    #[test]
    fn accepts_fused_reify_set_after_consume() {
        // §7.2: consume proves the attachment absent; the following set
        // may skip the replace check.
        let c = code(vec![
            Instr::Const(0),
            Instr::ConsumeAttachDyn,
            Instr::Pop,
            Instr::Const(0),
            Instr::ReifySetAttach {
                check_replace: false,
            },
            Instr::Const(0),
            Instr::Return,
        ]);
        verify(&c, MarkModel::Attachments).unwrap();
    }

    #[test]
    fn rejects_wrong_mark_model_instructions() {
        let c = code(vec![
            Instr::EagerPushFrame,
            Instr::EagerPopFrame,
            Instr::Const(0),
            Instr::Return,
        ]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::WrongMarkModel);
        // Under the eager model those same instructions are fine...
        verify(&c, MarkModel::EagerMarkStack).unwrap();
        // ...and so are attachment instructions: the marks register
        // coexists with the eager mark stack (§7.1 primitives work in the
        // old-Racket variant too).
        let c = code(vec![
            Instr::Const(0),
            Instr::PushAttach,
            Instr::PopAttach,
            Instr::Const(0),
            Instr::Return,
        ]);
        verify(&c, MarkModel::EagerMarkStack).unwrap();
    }

    #[test]
    fn rejects_capture_out_of_bounds_in_child() {
        let child = Rc::new(Code::build(
            "child",
            0,
            false,
            vec![Instr::CaptureRef(2), Instr::Return],
            vec![],
            vec![],
        ));
        let parent = Code::build(
            "parent",
            0,
            false,
            vec![
                Instr::Const(0),
                Instr::MakeClosure {
                    code: 0,
                    captures: 1,
                },
                Instr::Return,
            ],
            vec![Value::fixnum(1)],
            vec![child],
        );
        expect_kind(
            &parent,
            MarkModel::Attachments,
            ViolationKind::CaptureOutOfBounds,
        );
    }

    #[test]
    fn rejects_make_closure_code_index() {
        let c = code(vec![
            Instr::MakeClosure {
                code: 3,
                captures: 0,
            },
            Instr::Return,
        ]);
        expect_kind(
            &c,
            MarkModel::Attachments,
            ViolationKind::CodeIndexOutOfBounds,
        );
    }

    #[test]
    fn rejects_tail_call_leaking_attachment() {
        let c = code(vec![
            Instr::Const(0),
            Instr::PushAttach,
            Instr::Const(0),
            Instr::Const(0),
            Instr::TailCall(0),
        ]);
        expect_kind(
            &c,
            MarkModel::Attachments,
            ViolationKind::UnbalancedAttachment,
        );
    }

    #[test]
    fn accepts_call_with_attachment_consuming_push() {
        let c = code(vec![
            Instr::Const(0),
            Instr::PushAttach,
            Instr::Const(0), // rator (stand-in)
            Instr::CallWithAttachment(0),
            Instr::Return,
        ]);
        verify(&c, MarkModel::Attachments).unwrap();
    }

    #[test]
    fn rejects_call_with_attachment_without_proof() {
        let c = code(vec![
            Instr::Const(0),
            Instr::CallWithAttachment(0),
            Instr::Return,
        ]);
        expect_kind(
            &c,
            MarkModel::Attachments,
            ViolationKind::AttachmentNotProven,
        );
    }

    #[test]
    fn loop_with_consistent_state_verifies() {
        // while (#t) {} — an intentional infinite loop is well-formed.
        let c = code(vec![Instr::Const(0), Instr::Pop, Instr::Jump(0)]);
        verify(&c, MarkModel::Attachments).unwrap();
        // Same loop, but the body leaks one stack slot per iteration.
        let c = code(vec![Instr::Const(0), Instr::Jump(0)]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::JoinMismatch);
    }

    #[test]
    fn prim_call_pops_its_arguments() {
        let c = code(vec![
            Instr::Const(0),
            Instr::Const(0),
            Instr::PrimCall(PrimOp::Add, 2),
            Instr::Return,
        ]);
        verify(&c, MarkModel::Attachments).unwrap();
        let c = code(vec![
            Instr::Const(0),
            Instr::PrimCall(PrimOp::Add, 2),
            Instr::Return,
        ]);
        expect_kind(&c, MarkModel::Attachments, ViolationKind::StackUnderflow);
    }
}
