//! Interprocedural mark-flow analysis: the optimizer half of
//! `cm-analysis` (ROADMAP item 5).
//!
//! The [`verify`](crate::verify) pass answers "is this bytecode's
//! attachment discipline *legal*?"; this module answers two *may*
//! questions over the whole program's [`Code`] tree, following closure
//! references through the constant pool, `make-closure` sites, and the
//! global environment:
//!
//! 1. **Call-site observability** — which call sites invoke code that
//!    can never observe continuation attachments, transitively. A
//!    `call/attach` site (§7.2 case b) whose callee is proven
//!    non-observing is rewritten to a plain `call` followed by
//!    `pop-attach`: the callee runs with an identical `marks` register
//!    either way, so eliding the reification is unobservable — except
//!    to the `TraceJournal`, which is how the win is measured.
//! 2. **Dead mark keys** — constant keys set by
//!    `with-continuation-mark` but unreachable by any observer
//!    (`continuation-mark-set-first`, `continuation-mark-set->list`
//!    with a constant key, or anything generic). Dead-key `wcm` forms
//!    are elided at the expression level by `cm-compiler`.
//!
//! # The lattice and the call-graph approximation
//!
//! Per code object the pass runs the same worklist the verifier runs,
//! but over an *value* abstraction: each stack slot holds
//! `Unknown | Const(v) | Global(id) | Code(c)` (join of unequal values
//! is `Unknown`), alongside the verifier's exact `owned` attachment
//! counter. Call targets resolve through `make-closure` (child code),
//! the constant pool, and globals; a global resolves through this
//! program's `global-set!`s joined with the engine's snapshot binding,
//! so a name assigned by the program *and* bound at compile time only
//! resolves when both agree. Anything else — arguments, captures,
//! continuations, `apply` — is `Unknown`, and an unknown callee is
//! assumed to observe everything.
//!
//! # Soundness boundary
//!
//! The analysis shares the closed-world assumption the cp0 primitive
//! folder already makes: a global resolved at compile time is assumed
//! not to be redefined *to an observer* between compilation and the
//! runs of this code. Control natives (`call/cc`, `dynamic-wind`,
//! `apply`, prompts), winder installation, and engine suspension
//! (`%engine-block`) are all treated as observing *and* as potential
//! observers of every key, which keeps the facts conservative under
//! continuation re-entry, winder thunks, and suspended-engine resumes.
//! Rewrites are further restricted to sites where the abstract `owned`
//! counter is positive, so the rewritten code re-verifies under
//! [`verify`](crate::verify) — soundness by construction.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;

use cm_sexpr::Sym;
use cm_vm::{
    native_name, prim_attachment_transparent, Code, Globals, Instr, Value, CONTROL_NATIVE_NAMES,
};

/// Natives beyond [`CONTROL_NATIVE_NAMES`] that read or write attachment
/// or mark-stack state (or suspend the engine) and therefore make a
/// caller observing — and, conservatively, potential observers of every
/// key.
const SENSITIVE_NATIVE_NAMES: &[&str] = &[
    "current-continuation-attachments",
    "$cont-attachments",
    "$marks-first",
    "$marks->list",
    "$eager-mark-set!",
    "$eager-first",
    "$eager-marks",
    "$eager-immediate",
    "$eager-all-marks",
    "%engine-block",
    "$push-winder",
    "$pop-winder",
];

fn native_is_sensitive(name: &str) -> bool {
    CONTROL_NATIVE_NAMES.contains(&name) || SENSITIVE_NATIVE_NAMES.contains(&name)
}

// ----------------------------------------------------------------------
// Inputs
// ----------------------------------------------------------------------

/// Expression-level facts the compiler collects *before* `wcm` lowering.
///
/// The lowering of `with-continuation-mark` itself emits
/// consume/get-attachment instructions, so bytecode-level observer
/// detection would flag every program containing a `wcm`. The compiler
/// therefore reports, from the post-cp0 expression tree: which constant
/// keys the program sets, and whether it uses any *generic* observer
/// (the raw attachment API, `current-continuation-marks`, iterator- or
/// immediate-mark accessors) that can reach arbitrary keys.
#[derive(Debug, Clone, Default)]
pub struct ExprFacts {
    /// Constant keys set by `with-continuation-mark` in this program.
    pub set_keys: Vec<Sym>,
    /// A generic observer appears at the expression level: every key
    /// must be treated as live.
    pub observes_all: bool,
}

/// A prelude observer closure the analysis may *summarize* instead of
/// scanning: calling it observes exactly the constant key passed at
/// `key_arg` (and nothing else the analysis needs to track).
///
/// Trust is by code identity ([`Rc::ptr_eq`]), not by name, so a user
/// shadowing `continuation-mark-set-first` with their own definition
/// gets the conservative treatment.
#[derive(Debug, Clone)]
pub struct TrustedObserver {
    /// Diagnostic name (the global the closure was bound to).
    pub name: String,
    /// The closure's code object.
    pub code: Rc<Code>,
    /// Argument index holding the mark key.
    pub key_arg: usize,
}

/// The set of trusted observer summaries, built by `cm-core` from the
/// freshly loaded prelude.
#[derive(Debug, Clone, Default)]
pub struct TrustedObservers {
    /// The summaries, in registration order.
    pub observers: Vec<TrustedObserver>,
}

impl TrustedObservers {
    /// Finds the summary for a code object, if it is trusted.
    pub fn find(&self, code: &Rc<Code>) -> Option<&TrustedObserver> {
        self.observers.iter().find(|t| Rc::ptr_eq(&t.code, code))
    }
}

// ----------------------------------------------------------------------
// Facts
// ----------------------------------------------------------------------

/// One call site of the compiled program (root tree only), with the
/// analysis verdict.
#[derive(Debug, Clone)]
pub struct CallSiteFact {
    /// Name of the containing code object.
    pub code: String,
    /// Child-index path of the containing code from the root.
    pub path: Vec<u16>,
    /// Instruction offset of the call.
    pub offset: usize,
    /// Instruction kind (`call`, `tail-call`, `call/attach`,
    /// `eager-call-shared`).
    pub kind: &'static str,
    /// Resolved callee description.
    pub callee: String,
    /// Whether the callee may observe attachments, transitively.
    pub observes: bool,
    /// `call/attach` with an owned attachment and a non-observing
    /// callee: eligible for the `call` + `pop-attach` rewrite.
    pub rewritable: bool,
    /// Whether [`apply_rewrites`] rewrote this site.
    pub rewritten: bool,
}

/// The complete result of a mark-flow analysis run.
#[derive(Debug, Clone, Default)]
pub struct MarkFlowFacts {
    /// Call sites of the root code tree, ordered by (path, offset).
    pub call_sites: Vec<CallSiteFact>,
    /// Constant keys this program sets (display strings, sorted).
    pub set_keys: Vec<String>,
    /// Constant keys observed via trusted summaries (sorted); only
    /// meaningful when `observes_all_keys` is false.
    pub observed_keys: Vec<String>,
    /// A generic or unresolvable observer exists: no key is dead.
    pub observes_all_keys: bool,
    /// Set keys proven unobservable (display strings, sorted).
    pub dead_keys: Vec<String>,
    /// The dead keys as interned symbols (for the compiler's elision
    /// pass; not serialized).
    pub dead_key_syms: Vec<Sym>,
    /// Code objects scanned beyond the root tree (prelude and
    /// previously defined closures reached through globals).
    pub external_codes: usize,
    /// Sites rewritten by [`apply_rewrites`].
    pub rewritten_sites: usize,
    /// Dead-key `wcm` forms the compiler elided (filled by
    /// `cm-compiler`).
    pub elided_wcms: usize,
}

impl MarkFlowFacts {
    /// Serializes in the `cm-trace` ordered-JSON style: objects keep
    /// insertion order, two-space indentation, trailing newline —
    /// deterministic for golden-file tests.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"cm-markflow-facts-v1\",\n");
        out.push_str("  \"summary\": {\n");
        let observing = self.call_sites.iter().filter(|s| s.observes).count();
        let rewritable = self.call_sites.iter().filter(|s| s.rewritable).count();
        out.push_str(&format!(
            "    \"call-sites\": {},\n    \"observing-sites\": {},\n    \
             \"rewritable-sites\": {},\n    \"rewritten-sites\": {},\n    \
             \"elided-wcms\": {},\n    \"external-codes\": {}\n  }},\n",
            self.call_sites.len(),
            observing,
            rewritable,
            self.rewritten_sites,
            self.elided_wcms,
            self.external_codes,
        ));
        out.push_str("  \"keys\": {\n");
        out.push_str(&format!(
            "    \"set\": {},\n    \"observed\": {},\n    \
             \"observes-all\": {},\n    \"dead\": {}\n  }},\n",
            json_str_array(&self.set_keys),
            json_str_array(&self.observed_keys),
            self.observes_all_keys,
            json_str_array(&self.dead_keys),
        ));
        out.push_str("  \"call-sites\": [");
        for (i, s) in self.call_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"code\": {}, \"path\": [{}], \"offset\": {}, \
                 \"kind\": {}, \"callee\": {}, \"observes\": {}, \
                 \"rewritable\": {}, \"rewritten\": {}}}",
                json_escape(&s.code),
                s.path
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                s.offset,
                json_escape(s.kind),
                json_escape(&s.callee),
                s.observes,
                s.rewritable,
                s.rewritten,
            ));
        }
        if !self.call_sites.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| json_escape(s)).collect();
    format!("[{}]", quoted.join(", "))
}

// ----------------------------------------------------------------------
// Abstract values
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AbsVal {
    Unknown,
    Const(Value),
    Global(u32),
    Code(Rc<Code>),
}

impl AbsVal {
    fn same(&self, other: &AbsVal) -> bool {
        match (self, other) {
            (AbsVal::Unknown, AbsVal::Unknown) => true,
            (AbsVal::Const(a), AbsVal::Const(b)) => a.eq_value(b),
            (AbsVal::Global(a), AbsVal::Global(b)) => a == b,
            (AbsVal::Code(a), AbsVal::Code(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    fn join(&self, other: &AbsVal) -> AbsVal {
        if self.same(other) {
            self.clone()
        } else {
            AbsVal::Unknown
        }
    }
}

/// A resolved call target.
enum Resolved {
    Code(Rc<Code>),
    Native(&'static str),
    /// A constant that is not a procedure: the call errors before any
    /// observation can happen.
    NonCallable,
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Call,
    TailCall,
    CallWithAttachment,
    EagerCallShared,
}

impl SiteKind {
    fn label(self) -> &'static str {
        match self {
            SiteKind::Call => "call",
            SiteKind::TailCall => "tail-call",
            SiteKind::CallWithAttachment => "call/attach",
            SiteKind::EagerCallShared => "eager-call-shared",
        }
    }
}

/// A call site with unresolved abstract operands.
struct RawSite {
    code_idx: usize,
    offset: usize,
    kind: SiteKind,
    callee: AbsVal,
    args: Vec<AbsVal>,
    /// Abstract `owned > 0` at the site — the precondition for the
    /// verifier-legal `call` + `pop-attach` rewrite.
    owned_positive: bool,
}

struct CodeInfo {
    code: Rc<Code>,
    /// Member of the root tree (rewritable, exempt from bytecode-level
    /// dead-key triggers — its attachment instructions come from this
    /// compilation's own `wcm` lowering, which `ExprFacts` covers).
    internal: bool,
    path: Vec<u16>,
    /// This code itself executes an attachment-observing instruction,
    /// a non-transparent primitive, a sensitive native call, or an
    /// unresolvable call.
    own_observing: bool,
    /// An attachment instruction appears in this code (dead-key
    /// trigger for external codes).
    has_attach_instr: bool,
    scanned: bool,
}

// ----------------------------------------------------------------------
// The analysis driver
// ----------------------------------------------------------------------

struct Analyzer<'a> {
    globals: &'a Globals,
    trusted: &'a TrustedObservers,
    codes: Vec<CodeInfo>,
    index: HashMap<*const Code, usize>,
    sites: Vec<RawSite>,
    global_defs: HashMap<u32, AbsVal>,
}

/// Runs the mark-flow analysis over `root` and everything reachable
/// from it. `globals` is the engine's global table at compile time;
/// `trusted` carries the prelude observer summaries; `expr_facts` is
/// the compiler's pre-lowering report for this program.
pub fn analyze(
    root: &Rc<Code>,
    globals: &Globals,
    trusted: &TrustedObservers,
    expr_facts: &ExprFacts,
) -> MarkFlowFacts {
    let mut a = Analyzer {
        globals,
        trusted,
        codes: Vec::new(),
        index: HashMap::new(),
        sites: Vec::new(),
        global_defs: HashMap::new(),
    };
    a.register_tree(root, true, Vec::new());

    // Scan-and-resolve to a fixpoint: scanning collects global
    // assignments and raw call sites; resolving those sites can pull in
    // external codes (prelude closures, earlier definitions), which are
    // then scanned in turn. Resolutions are recomputed from scratch
    // each round, so late-discovered `global-set!`s can only make
    // results more conservative.
    loop {
        let mut scanned_any = false;
        for idx in 0..a.codes.len() {
            if !a.codes[idx].scanned {
                a.scan(idx);
                scanned_any = true;
            }
        }
        let mut discovered = false;
        for i in 0..a.sites.len() {
            let callee = a.sites[i].callee.clone();
            if let Resolved::Code(c) = a.resolve(&callee, 8) {
                if a.trusted.find(&c).is_none() && !a.index.contains_key(&Rc::as_ptr(&c)) {
                    a.register(c, false, Vec::new());
                    discovered = true;
                }
            }
        }
        if !discovered && !scanned_any {
            break;
        }
    }

    // Propagate "observes" over the resolved call graph to a fixpoint.
    let mut observes: Vec<bool> = a.codes.iter().map(|c| c.own_observing).collect();
    let resolved: Vec<(usize, Resolved)> = a
        .sites
        .iter()
        .map(|s| (s.code_idx, a.resolve(&s.callee, 8)))
        .collect();
    loop {
        let mut changed = false;
        for (caller, r) in &resolved {
            let callee_observes = match r {
                Resolved::Code(c) => {
                    a.trusted.find(c).is_some() || observes[a.index[&Rc::as_ptr(c)]]
                }
                Resolved::Native(name) => native_is_sensitive(name),
                Resolved::NonCallable => false,
                Resolved::Unknown => true,
            };
            if callee_observes && !observes[*caller] {
                observes[*caller] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Key liveness: expression-level generic observers, external
    // attachment instructions, sensitive natives, and unknown callees
    // force every key live; trusted summaries contribute per-key facts.
    let mut observes_all_keys = expr_facts.observes_all;
    let mut observed: BTreeSet<String> = BTreeSet::new();
    let mut observed_syms: HashSet<Sym> = HashSet::new();
    for c in &a.codes {
        if !c.internal && c.has_attach_instr {
            observes_all_keys = true;
        }
    }
    for (s, (_, r)) in a.sites.iter().zip(&resolved) {
        match r {
            Resolved::Code(c) => {
                if let Some(t) = a.trusted.find(c) {
                    match s.args.get(t.key_arg) {
                        Some(AbsVal::Const(Value::Sym(k))) => {
                            observed.insert(k.to_string());
                            observed_syms.insert(*k);
                        }
                        _ => observes_all_keys = true,
                    }
                }
            }
            Resolved::Native(name) => {
                if native_is_sensitive(name) {
                    observes_all_keys = true;
                }
            }
            Resolved::NonCallable => {}
            Resolved::Unknown => observes_all_keys = true,
        }
    }

    let mut set_keys: Vec<String> = expr_facts.set_keys.iter().map(|s| s.to_string()).collect();
    set_keys.sort();
    set_keys.dedup();
    let mut dead_key_syms: Vec<Sym> = Vec::new();
    let mut dead_keys: Vec<String> = Vec::new();
    if !observes_all_keys {
        let mut seen = HashSet::new();
        for k in &expr_facts.set_keys {
            if !observed_syms.contains(k) && seen.insert(*k) {
                dead_key_syms.push(*k);
                dead_keys.push(k.to_string());
            }
        }
        dead_keys.sort();
    }

    // Per-site facts for the root tree, in (path, offset) order.
    let mut call_sites: Vec<CallSiteFact> = Vec::new();
    for (s, (_, r)) in a.sites.iter().zip(&resolved) {
        let info = &a.codes[s.code_idx];
        if !info.internal {
            continue;
        }
        let (callee_desc, site_observes) = match r {
            Resolved::Code(c) => match a.trusted.find(c) {
                Some(t) => (format!("trusted:{}", t.name), true),
                None => (
                    format!("closure:{}", c.name),
                    observes[a.index[&Rc::as_ptr(c)]],
                ),
            },
            Resolved::Native(name) => (format!("native:{name}"), native_is_sensitive(name)),
            Resolved::NonCallable => ("non-callable".to_owned(), false),
            Resolved::Unknown => ("unknown".to_owned(), true),
        };
        call_sites.push(CallSiteFact {
            code: info.code.name.clone(),
            path: info.path.clone(),
            offset: s.offset,
            kind: s.kind.label(),
            callee: callee_desc,
            observes: site_observes,
            rewritable: s.kind == SiteKind::CallWithAttachment
                && s.owned_positive
                && !site_observes,
            rewritten: false,
        });
    }
    call_sites.sort_by(|x, y| x.path.cmp(&y.path).then(x.offset.cmp(&y.offset)));

    let external_codes = a.codes.iter().filter(|c| !c.internal).count();
    let mut observed_keys: Vec<String> = observed.into_iter().collect();
    if observes_all_keys {
        observed_keys.clear();
    }
    MarkFlowFacts {
        call_sites,
        set_keys,
        observed_keys,
        observes_all_keys,
        dead_keys,
        dead_key_syms,
        external_codes,
        rewritten_sites: 0,
        elided_wcms: 0,
    }
}

impl<'a> Analyzer<'a> {
    fn register(&mut self, code: Rc<Code>, internal: bool, path: Vec<u16>) -> usize {
        let ptr = Rc::as_ptr(&code);
        if let Some(&i) = self.index.get(&ptr) {
            return i;
        }
        let idx = self.codes.len();
        self.index.insert(ptr, idx);
        self.codes.push(CodeInfo {
            code,
            internal,
            path,
            own_observing: false,
            has_attach_instr: false,
            scanned: false,
        });
        idx
    }

    fn register_tree(&mut self, code: &Rc<Code>, internal: bool, path: Vec<u16>) {
        self.register(code.clone(), internal, path.clone());
        for (i, child) in code.codes.iter().enumerate() {
            let mut p = path.clone();
            p.push(i as u16);
            self.register_tree(child, internal, p);
        }
    }

    fn resolve(&self, v: &AbsVal, depth: usize) -> Resolved {
        if depth == 0 {
            return Resolved::Unknown;
        }
        match v {
            AbsVal::Unknown => Resolved::Unknown,
            AbsVal::Code(c) => Resolved::Code(c.clone()),
            AbsVal::Const(value) => resolve_value(value),
            AbsVal::Global(id) => {
                let prog = self.global_defs.get(id);
                let snap = self.globals.get(*id);
                match (prog, snap) {
                    (None, None) => Resolved::Unknown,
                    (None, Some(value)) => resolve_value(value),
                    (Some(d), None) => self.resolve(d, depth - 1),
                    (Some(d), Some(value)) => {
                        // Assigned by the program *and* already bound:
                        // only a resolution both agree on survives
                        // (covers call-before-redefinition).
                        match (self.resolve(d, depth - 1), resolve_value(value)) {
                            (Resolved::Code(x), Resolved::Code(y)) if Rc::ptr_eq(&x, &y) => {
                                Resolved::Code(x)
                            }
                            (Resolved::Native(x), Resolved::Native(y)) if x == y => {
                                Resolved::Native(x)
                            }
                            _ => Resolved::Unknown,
                        }
                    }
                }
            }
        }
    }

    /// Abstractly interprets one code object, mirroring the verifier's
    /// worklist (which has already proven depths and `owned` counters
    /// consistent at joins).
    fn scan(&mut self, idx: usize) {
        self.codes[idx].scanned = true;
        let code = self.codes[idx].code.clone();
        let arity = code.arity_required as usize + usize::from(code.rest);
        let entry = State {
            stack: vec![AbsVal::Unknown; arity],
            owned: 0,
        };
        let mut states: HashMap<usize, State> = HashMap::new();
        states.insert(0, entry);
        let mut work: Vec<usize> = vec![0];
        let mut in_work: HashSet<usize> = HashSet::new();
        in_work.insert(0);
        // Collected effects are idempotent across re-scans of an offset
        // except sites, which are keyed by offset and joined.
        let mut sites_here: HashMap<usize, RawSite> = HashMap::new();
        let mut own_observing = false;
        let mut has_attach_instr = false;

        while let Some(at) = work.pop() {
            in_work.remove(&at);
            let mut st = match states.get(&at) {
                Some(s) => s.clone(),
                None => continue,
            };
            let mut pc = at;
            while let Some(ins) = code.instrs.get(pc) {
                let merge = |target: usize,
                             st: &State,
                             states: &mut HashMap<usize, State>,
                             work: &mut Vec<usize>,
                             in_work: &mut HashSet<usize>| {
                    let changed = match states.get_mut(&target) {
                        Some(old) => old.join_from(st),
                        None => {
                            states.insert(target, st.clone());
                            true
                        }
                    };
                    if changed && in_work.insert(target) {
                        work.push(target);
                    }
                };
                match ins {
                    Instr::Const(i) => st.push(AbsVal::Const(code.consts[*i as usize])),
                    Instr::LocalRef(i) => {
                        let v = st
                            .stack
                            .get(*i as usize)
                            .cloned()
                            .unwrap_or(AbsVal::Unknown);
                        st.push(v);
                    }
                    Instr::LocalSet(i) => {
                        let v = st.pop();
                        if let Some(slot) = st.stack.get_mut(*i as usize) {
                            *slot = v;
                        }
                    }
                    Instr::CaptureRef(_) => st.push(AbsVal::Unknown),
                    Instr::GlobalRef(id) => st.push(AbsVal::Global(*id)),
                    Instr::GlobalSet(id) => {
                        let v = st.pop();
                        self.global_defs
                            .entry(*id)
                            .and_modify(|old| *old = old.join(&v))
                            .or_insert(v);
                    }
                    Instr::MakeClosure { code: ci, captures } => {
                        for _ in 0..*captures {
                            st.pop();
                        }
                        st.push(AbsVal::Code(code.codes[*ci as usize].clone()));
                    }
                    Instr::Jump(t) => {
                        merge(*t as usize, &st, &mut states, &mut work, &mut in_work);
                        break;
                    }
                    Instr::JumpIfFalse(t) => {
                        st.pop();
                        merge(*t as usize, &st, &mut states, &mut work, &mut in_work);
                    }
                    Instr::Leave(n) => {
                        let top = st.pop();
                        for _ in 0..*n {
                            st.pop();
                        }
                        st.push(top);
                    }
                    Instr::Pop => {
                        st.pop();
                    }
                    Instr::Call(argc)
                    | Instr::TailCall(argc)
                    | Instr::CallWithAttachment(argc)
                    | Instr::EagerCallShared(argc) => {
                        let argc = *argc as usize;
                        let kind = match ins {
                            Instr::Call(_) => SiteKind::Call,
                            Instr::TailCall(_) => SiteKind::TailCall,
                            Instr::CallWithAttachment(_) => SiteKind::CallWithAttachment,
                            _ => SiteKind::EagerCallShared,
                        };
                        let len = st.stack.len();
                        let callee = if len > argc {
                            st.stack[len - argc - 1].clone()
                        } else {
                            AbsVal::Unknown
                        };
                        let args = if len >= argc {
                            st.stack[len - argc..].to_vec()
                        } else {
                            vec![AbsVal::Unknown; argc]
                        };
                        let mut owned_positive = false;
                        if kind == SiteKind::CallWithAttachment && st.owned > 0 {
                            st.owned -= 1;
                            owned_positive = true;
                        }
                        if kind == SiteKind::EagerCallShared {
                            own_observing = true;
                        }
                        record_site(
                            &mut sites_here,
                            RawSite {
                                code_idx: idx,
                                offset: pc,
                                kind,
                                callee,
                                args,
                                owned_positive,
                            },
                        );
                        if kind == SiteKind::TailCall {
                            break;
                        }
                        for _ in 0..argc + 1 {
                            st.pop();
                        }
                        st.push(AbsVal::Unknown);
                    }
                    Instr::Return => break,
                    Instr::PrimCall(op, argc) => {
                        if !prim_attachment_transparent(*op) {
                            own_observing = true;
                        }
                        for _ in 0..*argc {
                            st.pop();
                        }
                        st.push(AbsVal::Unknown);
                    }
                    Instr::PushAttach => {
                        has_attach_instr = true;
                        st.pop();
                        st.owned += 1;
                    }
                    Instr::PopAttach => {
                        has_attach_instr = true;
                        st.owned = st.owned.saturating_sub(1);
                    }
                    Instr::SetAttach => {
                        has_attach_instr = true;
                        // Replaces the frame's attachment: only
                        // caller-visible when it is the caller's frame.
                        if st.owned == 0 {
                            own_observing = true;
                        }
                        st.pop();
                    }
                    Instr::ReifySetAttach { .. } => {
                        has_attach_instr = true;
                        // Reifies and merges into the caller's
                        // conceptual frame: always caller-visible.
                        own_observing = true;
                        st.pop();
                    }
                    Instr::GetAttachDyn | Instr::ConsumeAttachDyn => {
                        has_attach_instr = true;
                        // The verifier only admits these at owned == 0:
                        // they read the caller's attachment.
                        own_observing = true;
                        st.pop();
                        st.push(AbsVal::Unknown);
                    }
                    Instr::GetAttachPresent => {
                        has_attach_instr = true;
                        if st.owned == 0 {
                            own_observing = true;
                        }
                        st.push(AbsVal::Unknown);
                    }
                    Instr::ConsumeAttachPresent => {
                        has_attach_instr = true;
                        if st.owned == 0 {
                            own_observing = true;
                        } else {
                            st.owned -= 1;
                        }
                        st.push(AbsVal::Unknown);
                    }
                    Instr::CurrentAttachments => {
                        has_attach_instr = true;
                        own_observing = true;
                        st.push(AbsVal::Unknown);
                    }
                    Instr::EagerPushFrame | Instr::EagerPopFrame => {
                        has_attach_instr = true;
                        own_observing = true;
                    }
                    Instr::EagerMarkSet => {
                        has_attach_instr = true;
                        own_observing = true;
                        st.pop();
                        st.pop();
                    }
                }
                pc += 1;
                // Falling into a join point re-enters via the merge map.
                if states.contains_key(&pc) {
                    merge(pc, &st, &mut states, &mut work, &mut in_work);
                    break;
                }
            }
        }

        self.codes[idx].own_observing |= own_observing;
        self.codes[idx].has_attach_instr |= has_attach_instr;
        self.sites.extend(sites_here.into_values());
    }
}

fn resolve_value(v: &Value) -> Resolved {
    match v {
        Value::Closure(cl) => Resolved::Code(cl.code()),
        Value::Native(id) => Resolved::Native(native_name(*id)),
        // A stored continuation is callable and re-enters arbitrary
        // code: unknown.
        Value::Cont(_) => Resolved::Unknown,
        _ => Resolved::NonCallable,
    }
}

fn record_site(sites: &mut HashMap<usize, RawSite>, s: RawSite) {
    match sites.get_mut(&s.offset) {
        None => {
            sites.insert(s.offset, s);
        }
        Some(old) => {
            // The same offset reached along several paths: join the
            // operands; the rewrite precondition must hold on all.
            old.callee = old.callee.join(&s.callee);
            for (a, b) in old.args.iter_mut().zip(&s.args) {
                *a = a.join(b);
            }
            old.owned_positive &= s.owned_positive;
        }
    }
}

#[derive(Clone)]
struct State {
    stack: Vec<AbsVal>,
    owned: u32,
}

impl State {
    fn push(&mut self, v: AbsVal) {
        self.stack.push(v);
    }

    fn pop(&mut self) -> AbsVal {
        self.stack.pop().unwrap_or(AbsVal::Unknown)
    }

    /// Joins `other` into `self`; true when anything changed.
    fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        if self.stack.len() == other.stack.len() {
            for (a, b) in self.stack.iter_mut().zip(&other.stack) {
                let j = a.join(b);
                if !j.same(a) {
                    *a = j;
                    changed = true;
                }
            }
        } else {
            // The verifier rules this out for code it accepts; degrade
            // to all-Unknown rather than panic.
            for a in self.stack.iter_mut() {
                if !matches!(a, AbsVal::Unknown) {
                    *a = AbsVal::Unknown;
                    changed = true;
                }
            }
        }
        // `owned` is exact at joins for verified code; keep the
        // smaller count so the rewrite precondition stays sound.
        if other.owned < self.owned {
            self.owned = other.owned;
            changed = true;
        }
        changed
    }
}

// ----------------------------------------------------------------------
// The rewrite
// ----------------------------------------------------------------------

/// Applies the `call/attach` → `call` + `pop-attach` rewrite to every
/// eligible site of the root tree, returning the rewritten tree and
/// updating `facts` (`rewritten` flags and `rewritten_sites`).
///
/// Jump targets are remapped past inserted `pop-attach` instructions;
/// a jump that previously landed just after a rewritten call lands
/// after its `pop-attach`, where the attachment bookkeeping matches.
/// The caller is expected to re-run [`verify`](crate::verify) on the
/// result — the rewrite is designed to preserve verifiability.
pub fn apply_rewrites(root: &Rc<Code>, facts: &mut MarkFlowFacts) -> Rc<Code> {
    let mut by_path: HashMap<Vec<u16>, Vec<usize>> = HashMap::new();
    for s in facts.call_sites.iter_mut() {
        if s.rewritable {
            s.rewritten = true;
            by_path.entry(s.path.clone()).or_default().push(s.offset);
        }
    }
    facts.rewritten_sites = by_path.values().map(Vec::len).sum();
    if by_path.is_empty() {
        return root.clone();
    }
    for offsets in by_path.values_mut() {
        offsets.sort_unstable();
    }
    let mut path = Vec::new();
    rebuild(root, &by_path, &mut path)
}

fn rebuild(
    code: &Rc<Code>,
    by_path: &HashMap<Vec<u16>, Vec<usize>>,
    path: &mut Vec<u16>,
) -> Rc<Code> {
    let mut children: Vec<Rc<Code>> = Vec::with_capacity(code.codes.len());
    let mut child_changed = false;
    for (i, child) in code.codes.iter().enumerate() {
        path.push(i as u16);
        let rebuilt = rebuild(child, by_path, path);
        path.pop();
        child_changed |= !Rc::ptr_eq(&rebuilt, child);
        children.push(rebuilt);
    }
    let empty = Vec::new();
    let offsets = by_path.get(path.as_slice()).unwrap_or(&empty);
    if offsets.is_empty() && !child_changed {
        return code.clone();
    }
    let remap = |t: u32| -> u32 {
        let shift = offsets.iter().take_while(|&&s| (s as u32) < t).count();
        t + shift as u32
    };
    let mut instrs = Vec::with_capacity(code.instrs.len() + offsets.len());
    for (i, ins) in code.instrs.iter().enumerate() {
        match ins {
            Instr::Jump(t) => instrs.push(Instr::Jump(remap(*t))),
            Instr::JumpIfFalse(t) => instrs.push(Instr::JumpIfFalse(remap(*t))),
            Instr::CallWithAttachment(n) if offsets.binary_search(&i).is_ok() => {
                instrs.push(Instr::Call(*n));
                instrs.push(Instr::PopAttach);
            }
            other => instrs.push(other.clone()),
        }
    }
    Rc::new(Code::build(
        code.name.clone(),
        code.arity_required,
        code.rest,
        instrs,
        code.consts.clone(),
        children,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_vm::MarkModel;

    /// Hand-builds `main` calling child 0 under an attachment:
    /// `const v; push-attach; make-closure; call/attach 0; return`.
    fn wcm_call_code(callee: Rc<Code>) -> Rc<Code> {
        let main = Code::build(
            "main",
            0,
            false,
            vec![
                Instr::Const(0),
                Instr::PushAttach,
                Instr::MakeClosure {
                    code: 0,
                    captures: 0,
                },
                Instr::CallWithAttachment(0),
                Instr::Return,
            ],
            vec![Value::fixnum(7)],
            vec![callee],
        );
        Rc::new(main)
    }

    fn clean_callee() -> Rc<Code> {
        Rc::new(Code::build(
            "leaf",
            0,
            false,
            vec![Instr::Const(0), Instr::Return],
            vec![Value::fixnum(1)],
            vec![],
        ))
    }

    fn observing_callee() -> Rc<Code> {
        Rc::new(Code::build(
            "peek",
            0,
            false,
            vec![Instr::CurrentAttachments, Instr::Return],
            vec![],
            vec![],
        ))
    }

    #[test]
    fn clean_callee_site_is_rewritable() {
        let root = wcm_call_code(clean_callee());
        let globals = Globals::new();
        let facts = analyze(
            &root,
            &globals,
            &TrustedObservers::default(),
            &ExprFacts::default(),
        );
        let site = facts
            .call_sites
            .iter()
            .find(|s| s.kind == "call/attach")
            .expect("call site found");
        assert!(!site.observes, "{site:?}");
        assert!(site.rewritable, "{site:?}");
    }

    #[test]
    fn observing_callee_blocks_rewrite() {
        let root = wcm_call_code(observing_callee());
        let globals = Globals::new();
        let facts = analyze(
            &root,
            &globals,
            &TrustedObservers::default(),
            &ExprFacts::default(),
        );
        let site = facts
            .call_sites
            .iter()
            .find(|s| s.kind == "call/attach")
            .expect("call site found");
        assert!(site.observes);
        assert!(!site.rewritable);
    }

    #[test]
    fn unknown_callee_is_conservative() {
        // call/attach through a capture: unresolvable.
        let callee_slot = Rc::new(Code::build(
            "indirect",
            1,
            false,
            vec![
                Instr::Const(0),
                Instr::PushAttach,
                Instr::LocalRef(0),
                Instr::CallWithAttachment(0),
                Instr::Return,
            ],
            vec![Value::fixnum(1)],
            vec![],
        ));
        let globals = Globals::new();
        let facts = analyze(
            &callee_slot,
            &globals,
            &TrustedObservers::default(),
            &ExprFacts::default(),
        );
        let site = &facts.call_sites[0];
        assert_eq!(site.callee, "unknown");
        assert!(site.observes && !site.rewritable);
        assert!(facts.observes_all_keys);
    }

    #[test]
    fn rewrite_preserves_verifiability_and_remaps_jumps() {
        let root = wcm_call_code(clean_callee());
        crate::verify(&root, MarkModel::Attachments).expect("input verifies");
        let globals = Globals::new();
        let mut facts = analyze(
            &root,
            &globals,
            &TrustedObservers::default(),
            &ExprFacts::default(),
        );
        let rewritten = apply_rewrites(&root, &mut facts);
        assert_eq!(facts.rewritten_sites, 1);
        assert!(matches!(rewritten.instrs[3], Instr::Call(0)));
        assert!(matches!(rewritten.instrs[4], Instr::PopAttach));
        crate::verify(&rewritten, MarkModel::Attachments).expect("rewritten verifies");
    }

    #[test]
    fn jump_targets_shift_past_inserted_pops() {
        // if #t then (call/attach f) else 9, under an owned attachment.
        let callee = clean_callee();
        let main = Rc::new(Code::build(
            "main",
            0,
            false,
            vec![
                Instr::Const(0),       // 0: attachment value
                Instr::PushAttach,     // 1
                Instr::Const(1),       // 2: test
                Instr::JumpIfFalse(8), // 3
                Instr::MakeClosure {
                    code: 0,
                    captures: 0,
                }, // 4
                Instr::CallWithAttachment(0), // 5
                Instr::Jump(10),       // 6 -> join
                Instr::Pop,            // 7 (unreachable pad)
                Instr::Const(2),       // 8: else arm
                Instr::PopAttach,      // 9
                Instr::Return,         // 10
            ],
            vec![Value::fixnum(7), Value::Bool(true), Value::fixnum(9)],
            vec![callee],
        ));
        // The hand-built else arm pops explicitly; the then arm pops by
        // underflow (call/attach). After the rewrite both pop explicitly.
        crate::verify(&main, MarkModel::Attachments).expect("input verifies");
        let globals = Globals::new();
        let mut facts = analyze(
            &main,
            &globals,
            &TrustedObservers::default(),
            &ExprFacts::default(),
        );
        let rewritten = apply_rewrites(&main, &mut facts);
        assert_eq!(facts.rewritten_sites, 1);
        // Offsets after 5 shift by one; the jump at (old) 3 targeted 8,
        // now 9; the jump at (old) 6 targeted 10, now 11.
        assert!(matches!(rewritten.instrs[3], Instr::JumpIfFalse(9)));
        assert!(matches!(rewritten.instrs[5], Instr::Call(0)));
        assert!(matches!(rewritten.instrs[6], Instr::PopAttach));
        assert!(matches!(rewritten.instrs[7], Instr::Jump(11)));
        crate::verify(&rewritten, MarkModel::Attachments).expect("rewritten verifies");
    }

    #[test]
    fn trusted_observer_yields_key_specific_facts() {
        // main: set key 'a (expr facts), call trusted observer with 'b.
        let observer = Rc::new(Code::build(
            "continuation-mark-set-first",
            3,
            false,
            vec![Instr::CurrentAttachments, Instr::Return],
            vec![],
            vec![],
        ));
        let main = Rc::new(Code::build(
            "main",
            0,
            false,
            vec![
                Instr::GlobalRef(0),
                Instr::Const(0), // set
                Instr::Const(1), // key 'b
                Instr::Const(2), // default
                Instr::Call(3),
                Instr::Return,
            ],
            vec![Value::Bool(false), Value::symbol("b"), Value::Bool(false)],
            vec![],
        ));
        let mut globals = Globals::new();
        let id = globals.define(
            cm_sexpr::sym("continuation-mark-set-first"),
            Value::closure(cm_vm::Closure {
                code: observer.clone(),
                captures: vec![],
            }),
        );
        assert_eq!(id, 0);
        let trusted = TrustedObservers {
            observers: vec![TrustedObserver {
                name: "continuation-mark-set-first".to_owned(),
                code: observer,
                key_arg: 1,
            }],
        };
        let expr = ExprFacts {
            set_keys: vec![cm_sexpr::sym("a"), cm_sexpr::sym("b")],
            observes_all: false,
        };
        let facts = analyze(&main, &globals, &trusted, &expr);
        assert!(!facts.observes_all_keys);
        assert_eq!(facts.observed_keys, vec!["b".to_owned()]);
        assert_eq!(facts.dead_keys, vec!["a".to_owned()]);
        // Calling a trusted observer is still *observing* for rewrites.
        assert!(facts.call_sites[0].observes);
    }

    #[test]
    fn facts_serialize_deterministically() {
        let root = wcm_call_code(clean_callee());
        let globals = Globals::new();
        let facts = analyze(
            &root,
            &globals,
            &TrustedObservers::default(),
            &ExprFacts::default(),
        );
        let a = facts.to_json_pretty();
        let b = facts.to_json_pretty();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"cm-markflow-facts-v1\""));
        assert!(a.ends_with("}\n"));
    }
}
