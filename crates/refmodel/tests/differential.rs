//! Differential testing: random continuation-mark programs must produce
//! identical results in the heap-based reference model (§3–§4 semantics)
//! and in every configuration of the production engine (segmented stacks
//! + compiler support, §5–§7).
//!
//! This is the repo's strongest evidence that the §7.2 position
//! categorization (tail reify / case-b call / case-c push-pop), the §7.3
//! elision, and the §7.4 cp0 restriction preserve the model's semantics.

use cm_core::{Engine, EngineConfig};
use cm_refmodel::RefInterp;
use proptest::prelude::*;

/// A generable expression; rendered to Scheme source with a scope.
#[derive(Debug, Clone)]
enum GExpr {
    Num(i8),
    Key(u8),
    VarRef(u8),
    Add(Box<GExpr>, Box<GExpr>),
    If(Box<GExpr>, Box<GExpr>, Box<GExpr>),
    Begin(Vec<GExpr>),
    Let(Box<GExpr>, Box<GExpr>),
    /// ((lambda () body)) — a real call frame in the engine.
    ThunkCall(Box<GExpr>),
    /// ((lambda (x) body) arg)
    AppLambda(Box<GExpr>, Box<GExpr>),
    Wcm(u8, Box<GExpr>, Box<GExpr>),
    MarkList(u8),
    MarkFirst(u8),
    ZeroP(Box<GExpr>),
}

fn key_name(k: u8) -> &'static str {
    match k % 3 {
        0 => "ka",
        1 => "kb",
        _ => "kc",
    }
}

fn arb_gexpr() -> impl Strategy<Value = GExpr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(GExpr::Num),
        (0u8..3).prop_map(GExpr::Key),
        (0u8..4).prop_map(GExpr::VarRef),
        (0u8..3).prop_map(GExpr::MarkList),
        (0u8..3).prop_map(GExpr::MarkFirst),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| GExpr::If(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
            prop::collection::vec(inner.clone(), 1..4).prop_map(GExpr::Begin),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Let(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| GExpr::ThunkCall(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GExpr::AppLambda(Box::new(a), Box::new(b))),
            (0u8..3, inner.clone(), inner.clone()).prop_map(|(k, v, b)| GExpr::Wcm(
                k,
                Box::new(v),
                Box::new(b)
            )),
            inner.clone().prop_map(|a| GExpr::ZeroP(Box::new(a))),
        ]
    })
}

/// Renders to source; `scope` = number of bound variables.
fn render(e: &GExpr, scope: u32, out: &mut String) {
    use std::fmt::Write as _;
    match e {
        GExpr::Num(n) => {
            let _ = write!(out, "{n}");
        }
        GExpr::Key(k) => {
            let _ = write!(out, "'{}", key_name(*k));
        }
        GExpr::VarRef(i) => {
            if scope == 0 {
                out.push('0');
            } else {
                let _ = write!(out, "v{}", (*i as u32) % scope);
            }
        }
        GExpr::Add(a, b) => {
            out.push_str("(+ ");
            render(a, scope, out);
            out.push(' ');
            render(b, scope, out);
            out.push(')');
        }
        GExpr::If(t, c, a) => {
            out.push_str("(if ");
            render(t, scope, out);
            out.push(' ');
            render(c, scope, out);
            out.push(' ');
            render(a, scope, out);
            out.push(')');
        }
        GExpr::Begin(es) => {
            out.push_str("(begin");
            for x in es {
                out.push(' ');
                render(x, scope, out);
            }
            out.push(')');
        }
        GExpr::Let(init, body) => {
            let _ = write!(out, "(let ([v{scope} ");
            render(init, scope, out);
            out.push_str("]) ");
            render(body, scope + 1, out);
            out.push(')');
        }
        GExpr::ThunkCall(body) => {
            out.push_str("((lambda () ");
            render(body, scope, out);
            out.push_str("))");
        }
        GExpr::AppLambda(arg, body) => {
            let _ = write!(out, "((lambda (v{scope}) ");
            render(body, scope + 1, out);
            out.push_str(") ");
            render(arg, scope, out);
            out.push(')');
        }
        GExpr::Wcm(k, v, body) => {
            let _ = write!(out, "(with-continuation-mark '{} ", key_name(*k));
            render(v, scope, out);
            out.push(' ');
            render(body, scope, out);
            out.push(')');
        }
        GExpr::MarkList(k) => {
            let _ = write!(out, "(mark-list '{})", key_name(*k));
        }
        GExpr::MarkFirst(k) => {
            let _ = write!(out, "(mark-first '{} 'absent)", key_name(*k));
        }
        GExpr::ZeroP(a) => {
            out.push_str("(zero? ");
            render(a, scope, out);
            out.push(')');
        }
    }
}

const ENGINE_HELPERS: &str = r#"
(define (mark-list k) (continuation-mark-set->list #f k))
(define (mark-first k d) (continuation-mark-set-first #f k d))
"#;

fn engine_variants() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("full", EngineConfig::full()),
        ("no-1cc", EngineConfig::no_one_shot()),
        ("no-opt", EngineConfig::no_attachment_opt()),
        ("no-prim", EngineConfig::no_prim_opt()),
        ("old-racket", EngineConfig::old_racket()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn engines_agree_with_reference_model(e in arb_gexpr()) {
        let mut src = String::new();
        render(&e, 0, &mut src);
        let oracle = RefInterp::new().eval(&src);
        // Fixnum overflow aborts both sides; only compare successes.
        let Ok(expected) = oracle else { return Ok(()) };
        for (name, config) in engine_variants() {
            let mut engine = Engine::new(config);
            engine.eval(ENGINE_HELPERS).unwrap();
            let got = engine
                .eval_to_string(&src)
                .unwrap_or_else(|err| panic!("[{name}] error {err}\nprogram: {src}"));
            prop_assert_eq!(
                &got, &expected,
                "[{}] diverged from reference model\nprogram: {}", name, src
            );
        }
    }
}
