//! Differential testing: random continuation-mark programs must produce
//! identical results in the heap-based reference model (§3–§4 semantics)
//! and in every configuration of the production engine (segmented stacks
//! + compiler support, §5–§7).
//!
//! The generated language covers marks (`with-continuation-mark`,
//! `mark-list` / `mark-first`), first-class control (`call/cc` with
//! upward continuation invocations), and `dynamic-wind` whose winder
//! thunks log into a global `dw-log` — so the *order* in which
//! before/after thunks fire across jumps is part of every program's
//! observable result, not just the final value.
//!
//! Failures are shrunk with the vendored greedy minimizer
//! ([`proptest::shrink::minimize`]) before reporting, and the distilled
//! regressions live on as the checked-in seed corpus under
//! `tests/corpus/` (run unconditionally, before any random cases).
//!
//! This is the repo's strongest evidence that the §7.2 position
//! categorization (tail reify / case-b call / case-c push-pop), the §7.3
//! elision, and the §7.4 cp0 restriction preserve the model's semantics.

use cm_core::{Engine, EngineConfig};
use cm_refmodel::RefInterp;
use proptest::prelude::*;
use proptest::shrink::minimize;

/// A generable expression; rendered to Scheme source with a scope.
#[derive(Debug, Clone)]
enum GExpr {
    Num(i8),
    Key(u8),
    VarRef(u8),
    Add(Box<GExpr>, Box<GExpr>),
    If(Box<GExpr>, Box<GExpr>, Box<GExpr>),
    Begin(Vec<GExpr>),
    Let(Box<GExpr>, Box<GExpr>),
    /// ((lambda () body)) — a real call frame in the engine.
    ThunkCall(Box<GExpr>),
    /// ((lambda (x) body) arg)
    AppLambda(Box<GExpr>, Box<GExpr>),
    Wcm(u8, Box<GExpr>, Box<GExpr>),
    MarkList(u8),
    MarkFirst(u8),
    ZeroP(Box<GExpr>),
    /// (call/cc (lambda (kN) body))
    CallCc(Box<GExpr>),
    /// (kI arg) — invoke an enclosing continuation. Rendered inside a
    /// `call/cc` body only (upward escape, always within the extent);
    /// renders as plain `arg` when no continuation is in scope.
    InvokeK(u8, Box<GExpr>),
    /// (dynamic-wind (lambda () (note 'preT)) (lambda () body)
    ///               (lambda () (note 'postT))) — effect-only winders,
    /// so jump paths leave an observable trail in `dw-log`.
    Dw(u8, Box<GExpr>),
}

fn key_name(k: u8) -> &'static str {
    match k % 3 {
        0 => "ka",
        1 => "kb",
        _ => "kc",
    }
}

fn arb_gexpr() -> impl Strategy<Value = GExpr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(GExpr::Num),
        (0u8..3).prop_map(GExpr::Key),
        (0u8..4).prop_map(GExpr::VarRef),
        (0u8..3).prop_map(GExpr::MarkList),
        (0u8..3).prop_map(GExpr::MarkFirst),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| GExpr::If(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
            prop::collection::vec(inner.clone(), 1..4).prop_map(GExpr::Begin),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Let(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| GExpr::ThunkCall(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GExpr::AppLambda(Box::new(a), Box::new(b))),
            (0u8..3, inner.clone(), inner.clone()).prop_map(|(k, v, b)| GExpr::Wcm(
                k,
                Box::new(v),
                Box::new(b)
            )),
            inner.clone().prop_map(|a| GExpr::ZeroP(Box::new(a))),
            inner.clone().prop_map(|a| GExpr::CallCc(Box::new(a))),
            (0u8..2, inner.clone()).prop_map(|(i, a)| GExpr::InvokeK(i, Box::new(a))),
            (0u8..3, inner.clone()).prop_map(|(t, a)| GExpr::Dw(t, Box::new(a))),
        ]
    })
}

/// Renders to source; `scope` = bound variables, `kdepth` = enclosing
/// `call/cc` continuations in scope.
fn render(e: &GExpr, scope: u32, kdepth: u32, out: &mut String) {
    use std::fmt::Write as _;
    match e {
        GExpr::Num(n) => {
            let _ = write!(out, "{n}");
        }
        GExpr::Key(k) => {
            let _ = write!(out, "'{}", key_name(*k));
        }
        GExpr::VarRef(i) => {
            if scope == 0 {
                out.push('0');
            } else {
                let _ = write!(out, "v{}", (*i as u32) % scope);
            }
        }
        GExpr::Add(a, b) => {
            out.push_str("(+ ");
            render(a, scope, kdepth, out);
            out.push(' ');
            render(b, scope, kdepth, out);
            out.push(')');
        }
        GExpr::If(t, c, a) => {
            out.push_str("(if ");
            render(t, scope, kdepth, out);
            out.push(' ');
            render(c, scope, kdepth, out);
            out.push(' ');
            render(a, scope, kdepth, out);
            out.push(')');
        }
        GExpr::Begin(es) => {
            out.push_str("(begin");
            for x in es {
                out.push(' ');
                render(x, scope, kdepth, out);
            }
            out.push(')');
        }
        GExpr::Let(init, body) => {
            let _ = write!(out, "(let ([v{scope} ");
            render(init, scope, kdepth, out);
            out.push_str("]) ");
            render(body, scope + 1, kdepth, out);
            out.push(')');
        }
        GExpr::ThunkCall(body) => {
            out.push_str("((lambda () ");
            render(body, scope, kdepth, out);
            out.push_str("))");
        }
        GExpr::AppLambda(arg, body) => {
            let _ = write!(out, "((lambda (v{scope}) ");
            render(body, scope + 1, kdepth, out);
            out.push_str(") ");
            render(arg, scope, kdepth, out);
            out.push(')');
        }
        GExpr::Wcm(k, v, body) => {
            let _ = write!(out, "(with-continuation-mark '{} ", key_name(*k));
            render(v, scope, kdepth, out);
            out.push(' ');
            render(body, scope, kdepth, out);
            out.push(')');
        }
        GExpr::MarkList(k) => {
            let _ = write!(out, "(mark-list '{})", key_name(*k));
        }
        GExpr::MarkFirst(k) => {
            let _ = write!(out, "(mark-first '{} 'absent)", key_name(*k));
        }
        GExpr::ZeroP(a) => {
            out.push_str("(zero? ");
            render(a, scope, kdepth, out);
            out.push(')');
        }
        GExpr::CallCc(body) => {
            let _ = write!(out, "(call/cc (lambda (k{kdepth}) ");
            render(body, scope, kdepth + 1, out);
            out.push_str("))");
        }
        GExpr::InvokeK(i, arg) => {
            if kdepth == 0 {
                render(arg, scope, kdepth, out);
            } else {
                let _ = write!(out, "(k{} ", (*i as u32) % kdepth);
                render(arg, scope, kdepth, out);
                out.push(')');
            }
        }
        GExpr::Dw(tag, body) => {
            let t = tag % 3;
            let _ = write!(out, "(dynamic-wind (lambda () (note 'pre{t})) (lambda () ");
            render(body, scope, kdepth, out);
            let _ = write!(out, ") (lambda () (note 'post{t})))");
        }
    }
}

/// Shared by the model and every engine variant: the winder log. The
/// program's observable result is `(result . dw-log)`, so winder
/// firing order is differentially checked, not just the final value.
const COMMON_HELPERS: &str = "(define dw-log '())
(define (note t) (set! dw-log (cons t dw-log)))
";

/// Engine-only shims for the model's mark observers.
const ENGINE_HELPERS: &str = r#"
(define (mark-list k) (continuation-mark-set->list #f k))
(define (mark-first k d) (continuation-mark-set-first #f k d))
"#;

/// Renders the full program: helpers, the expression, and the
/// result+log pair.
fn program_source(e: &GExpr) -> String {
    let mut body = String::new();
    render(e, 0, 0, &mut body);
    format!("{COMMON_HELPERS}(define result {body})\n(cons result dw-log)")
}

/// All measured engine configurations — the eight-config matrix from
/// [`cm_core::all_configs`] (the mark-flow optimizer included, so the
/// fuzzer exercises its rewrites against the oracle).
fn engine_variants() -> Vec<(&'static str, EngineConfig)> {
    cm_core::all_configs()
}

/// Runs one source program through the model and every engine variant.
/// `Ok(None)`: the model errored (overflow, type error), nothing to
/// compare. `Err`: some engine errored or disagreed with the model.
fn differential_check_source(src: &str) -> Result<Option<String>, String> {
    let oracle = RefInterp::new().eval(src);
    let Ok(expected) = oracle else {
        return Ok(None);
    };
    for (name, config) in engine_variants() {
        let mut engine = Engine::new(config);
        engine.eval(ENGINE_HELPERS).unwrap();
        match engine.eval_to_string(src) {
            Ok(got) if got == expected => {}
            Ok(got) => {
                return Err(format!(
                    "[{name}] diverged from reference model: engine {got}, model {expected}"
                ))
            }
            Err(err) => {
                return Err(format!(
                    "[{name}] error where model produced {expected}: {err}"
                ))
            }
        }
    }
    Ok(Some(expected))
}

fn differential_check(e: &GExpr) -> Result<(), String> {
    differential_check_source(&program_source(e)).map(drop)
}

/// One-step-smaller variants for the greedy minimizer: hoisted
/// subterms, a constant, and each subterm shrunk in place.
fn shrink_candidates(e: &GExpr) -> Vec<GExpr> {
    use GExpr::*;
    let children: Vec<GExpr> = match e {
        Num(_) | Key(_) | VarRef(_) | MarkList(_) | MarkFirst(_) => Vec::new(),
        Add(a, b) | AppLambda(a, b) | Let(a, b) => vec![(**a).clone(), (**b).clone()],
        If(a, b, c) => vec![(**a).clone(), (**b).clone(), (**c).clone()],
        Begin(es) => es.clone(),
        ThunkCall(a) | ZeroP(a) | CallCc(a) | InvokeK(_, a) | Dw(_, a) => vec![(**a).clone()],
        Wcm(_, v, b) => vec![(**v).clone(), (**b).clone()],
    };
    let rebuild = |i: usize, c: GExpr| -> GExpr {
        let boxed = Box::new(c);
        match (e, i) {
            (Add(_, b), 0) => Add(boxed, b.clone()),
            (Add(a, _), 1) => Add(a.clone(), boxed),
            (AppLambda(_, b), 0) => AppLambda(boxed, b.clone()),
            (AppLambda(a, _), 1) => AppLambda(a.clone(), boxed),
            (Let(_, b), 0) => Let(boxed, b.clone()),
            (Let(a, _), 1) => Let(a.clone(), boxed),
            (If(_, b, c), 0) => If(boxed, b.clone(), c.clone()),
            (If(a, _, c), 1) => If(a.clone(), boxed, c.clone()),
            (If(a, b, _), 2) => If(a.clone(), b.clone(), boxed),
            (Begin(es), i) => {
                let mut es = es.clone();
                es[i] = *boxed;
                Begin(es)
            }
            (ThunkCall(_), _) => ThunkCall(boxed),
            (ZeroP(_), _) => ZeroP(boxed),
            (CallCc(_), _) => CallCc(boxed),
            (InvokeK(k, _), _) => InvokeK(*k, boxed),
            (Dw(t, _), _) => Dw(*t, boxed),
            (Wcm(k, _, b), 0) => Wcm(*k, boxed, b.clone()),
            (Wcm(k, v, _), 1) => Wcm(*k, v.clone(), boxed),
            _ => unreachable!("rebuild index out of range"),
        }
    };
    let mut out = Vec::new();
    // Most aggressive first: replace the whole node by a subterm.
    out.extend(children.iter().cloned());
    if !matches!(e, Num(0)) {
        out.push(Num(0));
    }
    // Then shrink one child in place (one level; the minimizer's outer
    // loop supplies the recursion).
    for (i, c) in children.iter().enumerate() {
        for cand in shrink_candidates(c) {
            out.push(rebuild(i, cand));
        }
    }
    out
}

/// The checked-in regression corpus: distilled failures and
/// hand-written interaction cases, run before any random generation.
#[test]
fn seed_corpus_agrees_across_all_configs() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing seed corpus at {}: {e}", dir.display()))
        .map(|r| r.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "scm"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 8,
        "seed corpus shrank to {}",
        entries.len()
    );
    for path in entries {
        let src = std::fs::read_to_string(&path).unwrap();
        match differential_check_source(&src) {
            Ok(Some(_)) => {}
            Ok(None) => panic!("{}: model failed to evaluate seed", path.display()),
            Err(msg) => panic!("{}: {msg}", path.display()),
        }
    }
}

/// Guards against the generator silently losing coverage: across a
/// sample of cases, the rendered programs must include each of the
/// control constructs this harness exists to test.
#[test]
fn generator_exercises_marks_control_and_winders() {
    let strategy = arb_gexpr();
    let mut rng = proptest::test_runner::TestRng::deterministic(proptest::test_runner::fnv1a(
        "generator_coverage",
    ));
    let mut sources = String::new();
    for _ in 0..300 {
        let e = strategy.gen_value(&mut rng);
        sources.push_str(&program_source(&e));
        sources.push('\n');
    }
    for needle in [
        "(with-continuation-mark ",
        "(mark-list ",
        "(mark-first ",
        "(call/cc ",
        "(k0 ",
        "(dynamic-wind ",
    ] {
        assert!(
            sources.contains(needle),
            "generator never produced {needle}"
        );
    }
}

/// Exercises the shrink machinery without needing a real engine bug:
/// minimizing against "renders an invoked continuation" must reach the
/// smallest such program, not stall on the random original.
#[test]
fn shrinker_reduces_to_minimal_interesting_program() {
    let big = GExpr::Dw(
        1,
        Box::new(GExpr::Add(
            Box::new(GExpr::Let(
                Box::new(GExpr::Num(7)),
                Box::new(GExpr::CallCc(Box::new(GExpr::Begin(vec![
                    GExpr::Wcm(0, Box::new(GExpr::Num(3)), Box::new(GExpr::MarkList(0))),
                    GExpr::InvokeK(0, Box::new(GExpr::Num(9))),
                ])))),
            )),
            Box::new(GExpr::ThunkCall(Box::new(GExpr::Num(5)))),
        )),
    );
    let interesting = |e: &GExpr| {
        let mut s = String::new();
        render(e, 0, 0, &mut s);
        s.contains("(k0 ")
    };
    assert!(interesting(&big));
    let min = minimize(big, shrink_candidates, interesting, 100);
    let mut s = String::new();
    render(&min, 0, 0, &mut s);
    assert_eq!(
        s, "(call/cc (lambda (k0) (k0 0)))",
        "shrinker left a non-minimal program"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn engines_agree_with_reference_model(e in arb_gexpr()) {
        if let Err(first_msg) = differential_check(&e) {
            let min = minimize(
                e,
                shrink_candidates,
                |c| differential_check(c).is_err(),
                400,
            );
            let msg = differential_check(&min).err().unwrap_or(first_msg);
            let src = program_source(&min);
            prop_assert!(false, "{msg}\nshrunk program:\n{src}");
        }
    }
}
