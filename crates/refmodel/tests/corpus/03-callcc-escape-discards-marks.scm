;; Escaping past a with-continuation-mark frame removes its mark: the
;; observation after the jump sees only the surviving outer mark.
(with-continuation-mark 'ka 'outer
  (car (cons
         (call/cc
           (lambda (k0)
             (with-continuation-mark 'ka 'inner
               (car (cons (k0 (mark-first 'kb 'absent)) '())))))
         (mark-list 'ka))))
