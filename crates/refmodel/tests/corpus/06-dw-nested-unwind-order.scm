;; Escaping from a doubly-nested dynamic-wind unwinds innermost first:
;; post2 fires before post1.
(define dw-log '())
(define (note t) (set! dw-log (cons t dw-log)))
(define r
  (call/cc
    (lambda (k0)
      (dynamic-wind
        (lambda () (note 'pre1))
        (lambda ()
          (dynamic-wind
            (lambda () (note 'pre2))
            (lambda () (k0 'out))
            (lambda () (note 'post2))))
        (lambda () (note 'post1))))))
(cons r dw-log)
