;; dynamic-wind without any jump: pre, body, post, in that order, and
;; the body's value passes through the after-thunk untouched.
(define dw-log '())
(define (note t) (set! dw-log (cons t dw-log)))
(define r
  (dynamic-wind
    (lambda () (note 'pre))
    (lambda () (note 'body) 42)
    (lambda () (note 'post))))
(cons r dw-log)
