;; A mark outside the escape target survives the winder-running jump;
;; the mark inside the abandoned dynamic-wind extent does not.
(define dw-log '())
(define (note t) (set! dw-log (cons t dw-log)))
(define r
  (with-continuation-mark 'ka 'outside
    (car (cons
           (call/cc
             (lambda (k0)
               (dynamic-wind
                 (lambda () (note 'pre))
                 (lambda ()
                   (with-continuation-mark 'ka 'inside
                     (car (cons (k0 'jumped) '()))))
                 (lambda () (note 'post)))))
           (mark-list 'ka)))))
(cons r dw-log)
