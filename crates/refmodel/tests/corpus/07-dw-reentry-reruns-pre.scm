;; Re-entering a continuation captured inside a dynamic-wind body
;; re-runs the before-thunk each time (and the after-thunk on each
;; normal exit): pre body post, twice.
(define dw-log '())
(define (note t) (set! dw-log (cons t dw-log)))
(define saved #f)
(define phase 0)
(dynamic-wind
  (lambda () (note 'pre))
  (lambda ()
    (call/cc (lambda (k0) (set! saved k0)))
    (note 'body))
  (lambda () (note 'post)))
(set! phase (+ phase 1))
(if (< phase 2) (saved 'again) dw-log)
