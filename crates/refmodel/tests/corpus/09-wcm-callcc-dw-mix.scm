;; The full mix: marks pushed inside nested dynamic-winds, a tail wcm
;; replacing a value, an escape that unwinds one winder but not the
;; other, and mark observations on both sides of the jump.
(define dw-log '())
(define (note t) (set! dw-log (cons t dw-log)))
(define r
  (dynamic-wind
    (lambda () (note 'pre-outer))
    (lambda ()
      (with-continuation-mark 'ka 1
        (car (cons
               (call/cc
                 (lambda (k0)
                   (dynamic-wind
                     (lambda () (note 'pre-inner))
                     (lambda ()
                       (with-continuation-mark 'kb 2
                         (if (zero? (mark-first 'ka 0))
                             'unreached
                             (k0 (mark-list 'kb)))))
                     (lambda () (note 'post-inner)))))
               (mark-list 'ka)))))
    (lambda () (note 'post-outer))))
(cons r dw-log)
