;; An upward escape out of a dynamic-wind body still runs the
;; after-thunk, and code after the jump point never runs.
(define dw-log '())
(define (note t) (set! dw-log (cons t dw-log)))
(define r
  (call/cc
    (lambda (k0)
      (dynamic-wind
        (lambda () (note 'pre))
        (lambda () (k0 'out) (note 'unreached))
        (lambda () (note 'post))))))
(cons r dw-log)
