;; Non-tail recursion stacks one mark per live frame, innermost first.
(define (grow n)
  (with-continuation-mark 'ka n
    (if (zero? n)
        (mark-list 'ka)
        (car (cons (grow (- n 1)) '())))))
(grow 3)
