;; Tail calls under with-continuation-mark replace the frame's mark
;; instead of stacking (§2.1): the loop ends with a single mark.
(define (loop n)
  (with-continuation-mark 'ka n
    (if (zero? n) (mark-list 'ka) (loop (- n 1)))))
(loop 5)
