//! The paper's §3–§4 *model* of continuations and marks, implemented
//! directly: a CEK-style machine whose continuation is a chain of
//! heap-allocated frames, each carrying a key→value badge (mark
//! dictionary). Continuation capture is an O(1) pointer copy; updating a
//! frame's marks allocates a fresh frame sharing the rest of the chain,
//! exactly as §4's "pair any reference to a frame with a reference to the
//! frame's marks" prescribes.
//!
//! This crate is the *oracle*: it favors obvious correctness over speed
//! and is differentially tested against the production engine
//! (`cm-core`), which implements the same observable semantics with
//! segmented stacks and compiler support. It also stands in for the
//! "heap-allocated frames" implementation strategy (à la Pycket) in the
//! §8.1 comparison.
//!
//! Supported language: the expander's full surface syntax, first-class
//! continuations (`call/cc`), `with-continuation-mark`, and the model
//! observers `(mark-list key)` / `(mark-first key dflt)`.
//!
//! # Examples
//!
//! ```
//! use cm_refmodel::RefInterp;
//!
//! let mut interp = RefInterp::new();
//! let v = interp
//!     .eval("(with-continuation-mark 'k 1 (mark-list 'k))")
//!     .unwrap();
//! assert_eq!(v, "(1)");
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use cm_compiler::ast::{Expr, LambdaExpr, TopForm, VarId};
use cm_compiler::expand::Expander;
use cm_sexpr::Sym;
use cm_vm::{prim_op_value, PrimOp, Value};

/// An error from the reference interpreter.
#[derive(Debug, Clone)]
pub struct RefError(pub String);

/// The exact message produced when the step limit is exhausted; kept as a
/// constant so [`RefError::is_step_limit`] stays in sync with the check
/// in the interpreter loop.
const STEP_LIMIT_MSG: &str = "step limit exhausted";

impl RefError {
    /// Whether this error is step-limit exhaustion (a resource limit, not
    /// a disagreement about the program). Differential testers that run
    /// the model against a fault-injected engine use this to tell "the
    /// model also ran out of budget" apart from a real divergence.
    pub fn is_step_limit(&self) -> bool {
        self.0 == STEP_LIMIT_MSG
    }
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "refmodel error: {}", self.0)
    }
}

impl std::error::Error for RefError {}

type R<T> = Result<T, RefError>;

fn fail<T>(msg: impl Into<String>) -> R<T> {
    Err(RefError(msg.into()))
}

/// Built-in procedures the model understands directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Builtin {
    Prim(PrimOp),
    CallCc,
    DynamicWind,
    MarkList,
    MarkFirst,
    List,
    Error,
}

/// Runtime values of the model.
#[derive(Clone)]
enum RV {
    /// VM data values (fixnums, pairs, symbols, strings, ...).
    Data(Value),
    /// A closure over the model environment.
    Closure(Rc<RClosure>),
    /// A built-in procedure.
    Builtin(Builtin),
    /// A captured continuation: a frame-chain pointer plus the winder
    /// stack in effect at capture (§ dynamic-wind semantics).
    Cont(Kont, Winders),
}

struct RClosure {
    lambda: Rc<LambdaExpr>,
    env: Env,
}

impl RV {
    fn is_true(&self) -> bool {
        !matches!(self, RV::Data(Value::Bool(false)))
    }

    fn as_data(&self, who: &str) -> R<Value> {
        match self {
            RV::Data(v) => Ok(*v),
            _ => fail(format!("{who}: expected a data value, got a procedure")),
        }
    }

    fn show(&self) -> String {
        match self {
            RV::Data(v) => v.write_string(),
            RV::Closure(_) | RV::Builtin(_) => "#<procedure>".into(),
            RV::Cont(..) => "#<continuation>".into(),
        }
    }
}

/// Persistent environment chain; assignment goes through `RefCell` cells
/// so closures share mutations.
#[derive(Clone)]
struct Env(Option<Rc<EnvNode>>);

struct EnvNode {
    var: VarId,
    val: RefCell<RV>,
    next: Env,
}

impl Env {
    fn empty() -> Env {
        Env(None)
    }

    fn bind(&self, var: VarId, val: RV) -> Env {
        Env(Some(Rc::new(EnvNode {
            var,
            val: RefCell::new(val),
            next: self.clone(),
        })))
    }

    fn lookup(&self, var: VarId) -> Option<Rc<EnvNode>> {
        let mut cur = self.0.clone();
        while let Some(n) = cur {
            if n.var == var {
                return Some(n);
            }
            cur = n.next.0.clone();
        }
        None
    }
}

/// A frame's mark badge: a persistent key→value dictionary.
#[derive(Clone, Default)]
struct Badge(Option<Rc<BadgeNode>>);

struct BadgeNode {
    key: Value,
    val: RV,
    next: Badge,
}

impl Badge {
    /// Functional update with replace semantics for an existing key.
    fn set(&self, key: Value, val: RV) -> Badge {
        let mut kept: Vec<(Value, RV)> = Vec::new();
        let mut cur = self.0.clone();
        while let Some(n) = cur {
            if !n.key.eq_value(&key) {
                kept.push((n.key, n.val.clone()));
            }
            cur = n.next.0.clone();
        }
        let mut out = Badge(None);
        for (k, v) in kept.into_iter().rev() {
            out = Badge(Some(Rc::new(BadgeNode {
                key: k,
                val: v,
                next: out,
            })));
        }
        Badge(Some(Rc::new(BadgeNode {
            key,
            val,
            next: out,
        })))
    }

    fn get(&self, key: &Value) -> Option<RV> {
        let mut cur = self.0.clone();
        while let Some(n) = cur {
            if n.key.eq_value(key) {
                return Some(n.val.clone());
            }
            cur = n.next.0.clone();
        }
        None
    }
}

/// One active `dynamic-wind`: its thunks plus an identity used to
/// compute shared prefixes between winder stacks.
struct RWinder {
    /// Before-thunk, re-run when a continuation jumps back inside.
    pre: RV,
    /// After-thunk, run when control leaves (normally or by a jump).
    post: RV,
}

/// Active winders, outermost first.
type Winders = Vec<Rc<RWinder>>;

/// Longest shared prefix of two winder stacks (by winder identity).
fn shared_winders(a: &Winders, b: &Winders) -> usize {
    a.iter()
        .zip(b.iter())
        .take_while(|(x, y)| Rc::ptr_eq(x, y))
        .count()
}

/// What a frame is waiting for (defunctionalized continuations).
enum KKind {
    /// The bottom of the continuation.
    Root,
    /// Waiting for an `if` test.
    If {
        conseq: Rc<Expr>,
        altern: Rc<Expr>,
        env: Env,
    },
    /// Waiting for a non-final sequence element.
    Seq { rest: Vec<Rc<Expr>>, env: Env },
    /// Waiting for a `let` binding's value.
    Let {
        var: VarId,
        pending: Vec<(VarId, Rc<Expr>)>,
        done: Vec<(VarId, RV)>,
        body: Rc<Expr>,
        env: Env,
    },
    /// Waiting for the next operator/operand of an application.
    App {
        done: Vec<RV>,
        pending: Vec<Rc<Expr>>,
        env: Env,
        prim: Option<PrimOp>,
    },
    /// Waiting for a `set!` value.
    Set { cell: Rc<EnvNode> },
    /// Waiting for a top-level definition's value.
    Define { name: Sym },
    /// Waiting for a wcm key.
    WcmKey {
        val: Rc<Expr>,
        body: Rc<Expr>,
        env: Env,
    },
    /// Waiting for a wcm value.
    WcmVal { key: RV, body: Rc<Expr>, env: Env },
    /// Waiting for a `dynamic-wind` before-thunk (normal entry).
    DwAfterPre { winder: Rc<RWinder>, thunk: RV },
    /// Waiting for a `dynamic-wind` body.
    DwAfterBody { winder: Rc<RWinder> },
    /// Waiting for a `dynamic-wind` after-thunk; holds the body's value.
    DwAfterPost { result: RV },
    /// A continuation jump in progress: run `exits` posts
    /// (innermost-first), then `enters` pres (outermost-first), then
    /// deliver `value` to the frame below (the jump target).
    Unwind {
        exits: Vec<Rc<RWinder>>,
        enters: Vec<Rc<RWinder>>,
        /// Winder whose pre just ran and must now become active.
        activating: Option<Rc<RWinder>>,
        target_winders: Winders,
        value: RV,
    },
}

/// A heap-allocated continuation frame paired with its marks (§4).
struct KFrame {
    kind: Rc<KKind>,
    marks: Badge,
    next: Kont,
}

/// A continuation: a pointer into the frame chain. `None` = empty.
#[derive(Clone)]
struct Kont(Option<Rc<KFrame>>);

impl Kont {
    fn root() -> Kont {
        Kont(Some(Rc::new(KFrame {
            kind: Rc::new(KKind::Root),
            marks: Badge::default(),
            next: Kont(None),
        })))
    }

    fn push(&self, kind: KKind) -> Kont {
        Kont(Some(Rc::new(KFrame {
            kind: Rc::new(kind),
            marks: Badge::default(),
            next: self.clone(),
        })))
    }

    /// A copy of the chain whose top frame's badge maps `key` to `val`
    /// (the §4 move: new frame reference + new marks, shared tail).
    fn with_mark(&self, key: Value, val: RV) -> Kont {
        let top = self.0.as_ref().expect("with_mark on empty continuation");
        Kont(Some(Rc::new(KFrame {
            kind: top.kind.clone(),
            marks: top.marks.set(key, val),
            next: top.next.clone(),
        })))
    }
}

enum Ctl {
    Eval(Rc<Expr>, Env),
    Value(RV),
}

/// The reference interpreter.
///
/// Holds the expander (so macros persist across [`RefInterp::eval`]
/// calls) and top-level definitions.
pub struct RefInterp {
    expander: Expander,
    globals: HashMap<Sym, RV>,
    /// Active `dynamic-wind` winders, outermost first (a machine
    /// register, like the marks register in the production engine).
    winders: Winders,
    /// Safety net against runaway generated programs.
    step_limit: u64,
}

impl Default for RefInterp {
    fn default() -> RefInterp {
        RefInterp::new()
    }
}

impl RefInterp {
    /// Creates an interpreter with the built-ins installed.
    pub fn new() -> RefInterp {
        let mut globals = HashMap::new();
        for (name, op, _, _) in cm_compiler::cp0::prim_table() {
            globals.insert(cm_sexpr::sym(name), RV::Builtin(Builtin::Prim(*op)));
        }
        for (name, b) in [
            ("call/cc", Builtin::CallCc),
            ("call-with-current-continuation", Builtin::CallCc),
            ("dynamic-wind", Builtin::DynamicWind),
            ("mark-list", Builtin::MarkList),
            ("mark-first", Builtin::MarkFirst),
            ("list", Builtin::List),
            ("error", Builtin::Error),
        ] {
            globals.insert(cm_sexpr::sym(name), RV::Builtin(b));
        }
        RefInterp {
            expander: Expander::new(),
            globals,
            winders: Vec::new(),
            step_limit: 20_000_000,
        }
    }

    /// Sets the step budget for each subsequent [`RefInterp::eval`] call.
    ///
    /// The default (20 million) is a safety net against runaway generated
    /// programs; torture/differential harnesses lower it to bound model
    /// runs, then detect exhaustion via [`RefError::is_step_limit`].
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// The current per-`eval` step budget.
    pub fn step_limit(&self) -> u64 {
        self.step_limit
    }

    /// Evaluates a program, returning the written form of the last value.
    ///
    /// # Errors
    ///
    /// Returns a [`RefError`] for syntax errors, runtime type errors, or
    /// step-limit exhaustion.
    pub fn eval(&mut self, src: &str) -> R<String> {
        let data = cm_sexpr::parse_str(src).map_err(|e| RefError(e.to_string()))?;
        let forms = self
            .expander
            .expand_program(&data)
            .map_err(|e| RefError(e.to_string()))?;
        if forms.is_empty() {
            return Ok(Value::Void.write_string());
        }
        // Run the whole program under one continuation so that a
        // continuation captured in one top-level form spans the rest of
        // the program (matching the production engine).
        let program = Expr::Seq(
            forms
                .into_iter()
                .map(|f| match f {
                    TopForm::Define(name, e) => Expr::SetGlobal(name, Box::new(e)),
                    TopForm::Expr(e) => e,
                })
                .collect(),
        );
        Ok(self.run(&program)?.show())
    }

    fn run(&mut self, e: &Expr) -> R<RV> {
        let mut ctl = Ctl::Eval(Rc::new(e.clone()), Env::empty());
        let mut kont = Kont::root();
        self.winders.clear();
        let mut steps = self.step_limit;
        loop {
            if steps == 0 {
                return fail(STEP_LIMIT_MSG);
            }
            steps -= 1;
            match ctl {
                Ctl::Eval(e, env) => match &*e {
                    Expr::Quote(v) => ctl = Ctl::Value(RV::Data(*v)),
                    Expr::LocalRef(v) => match env.lookup(*v) {
                        Some(cell) => ctl = Ctl::Value(cell.val.borrow().clone()),
                        None => return fail(format!("unbound local #{v}")),
                    },
                    Expr::GlobalRef(s) => match self.globals.get(s) {
                        Some(v) => ctl = Ctl::Value(v.clone()),
                        None => return fail(format!("unbound global {s}")),
                    },
                    Expr::If(t, c, a) => {
                        kont = kont.push(KKind::If {
                            conseq: Rc::new((**c).clone()),
                            altern: Rc::new((**a).clone()),
                            env: env.clone(),
                        });
                        ctl = Ctl::Eval(Rc::new((**t).clone()), env);
                    }
                    Expr::Seq(es) => {
                        let mut rest: Vec<Rc<Expr>> =
                            es.iter().map(|x| Rc::new(x.clone())).collect();
                        let first = rest.remove(0);
                        if rest.is_empty() {
                            ctl = Ctl::Eval(first, env);
                        } else {
                            kont = kont.push(KKind::Seq {
                                rest,
                                env: env.clone(),
                            });
                            ctl = Ctl::Eval(first, env);
                        }
                    }
                    Expr::Let { bindings, body } => {
                        if bindings.is_empty() {
                            ctl = Ctl::Eval(Rc::new((**body).clone()), env);
                        } else {
                            let mut pending: Vec<(VarId, Rc<Expr>)> = bindings
                                .iter()
                                .map(|(v, e)| (*v, Rc::new(e.clone())))
                                .collect();
                            let (var, first) = pending.remove(0);
                            kont = kont.push(KKind::Let {
                                var,
                                pending,
                                done: Vec::new(),
                                body: Rc::new((**body).clone()),
                                env: env.clone(),
                            });
                            ctl = Ctl::Eval(first, env);
                        }
                    }
                    Expr::Lambda(l) => {
                        ctl = Ctl::Value(RV::Closure(Rc::new(RClosure {
                            lambda: l.clone(),
                            env,
                        })));
                    }
                    Expr::SetLocal(v, rhs) => match env.lookup(*v) {
                        Some(cell) => {
                            kont = kont.push(KKind::Set { cell });
                            ctl = Ctl::Eval(Rc::new((**rhs).clone()), env);
                        }
                        None => return fail(format!("set!: unbound local #{v}")),
                    },
                    Expr::SetGlobal(s, rhs) => {
                        kont = kont.push(KKind::Define { name: *s });
                        ctl = Ctl::Eval(Rc::new((**rhs).clone()), env);
                    }
                    Expr::Call { rator, rands } => {
                        let pending: Vec<Rc<Expr>> =
                            rands.iter().map(|x| Rc::new(x.clone())).collect();
                        kont = kont.push(KKind::App {
                            done: Vec::new(),
                            pending,
                            env: env.clone(),
                            prim: None,
                        });
                        ctl = Ctl::Eval(Rc::new((**rator).clone()), env);
                    }
                    Expr::PrimApp { op, rands } => {
                        if rands.is_empty() {
                            ctl = Ctl::Value(apply_prim(*op, &[])?);
                        } else {
                            let mut pending: Vec<Rc<Expr>> =
                                rands.iter().map(|x| Rc::new(x.clone())).collect();
                            let first = pending.remove(0);
                            kont = kont.push(KKind::App {
                                done: Vec::new(),
                                pending,
                                env: env.clone(),
                                prim: Some(*op),
                            });
                            ctl = Ctl::Eval(first, env);
                        }
                    }
                    Expr::Wcm { key, val, body } => {
                        kont = kont.push(KKind::WcmKey {
                            val: Rc::new((**val).clone()),
                            body: Rc::new((**body).clone()),
                            env: env.clone(),
                        });
                        ctl = Ctl::Eval(Rc::new((**key).clone()), env);
                    }
                    Expr::SetAttachment { .. }
                    | Expr::GetAttachment { .. }
                    | Expr::CurrentAttachments => {
                        return fail(
                            "raw attachment primitives are not part of the reference model",
                        )
                    }
                },
                Ctl::Value(v) => {
                    let Some(frame) = kont.0.clone() else {
                        return Ok(v);
                    };
                    let next = frame.next.clone();
                    match &*frame.kind {
                        KKind::Root => return Ok(v),
                        KKind::If {
                            conseq,
                            altern,
                            env,
                        } => {
                            // The branch is in tail position: this frame
                            // pops before the branch runs.
                            kont = next;
                            ctl = if v.is_true() {
                                Ctl::Eval(conseq.clone(), env.clone())
                            } else {
                                Ctl::Eval(altern.clone(), env.clone())
                            };
                        }
                        KKind::Seq { rest, env } => {
                            let mut rest = rest.clone();
                            let first = rest.remove(0);
                            kont = next;
                            if !rest.is_empty() {
                                kont = kont.push(KKind::Seq {
                                    rest,
                                    env: env.clone(),
                                });
                            }
                            ctl = Ctl::Eval(first, env.clone());
                        }
                        KKind::Let {
                            var,
                            pending,
                            done,
                            body,
                            env,
                        } => {
                            let mut done = done.clone();
                            done.push((*var, v));
                            let mut pending = pending.clone();
                            kont = next;
                            if pending.is_empty() {
                                let mut env2 = env.clone();
                                for (var, val) in done {
                                    env2 = env2.bind(var, val);
                                }
                                ctl = Ctl::Eval(body.clone(), env2);
                            } else {
                                let (nvar, first) = pending.remove(0);
                                kont = kont.push(KKind::Let {
                                    var: nvar,
                                    pending,
                                    done,
                                    body: body.clone(),
                                    env: env.clone(),
                                });
                                ctl = Ctl::Eval(first, env.clone());
                            }
                        }
                        KKind::App {
                            done,
                            pending,
                            env,
                            prim,
                        } => {
                            let mut done = done.clone();
                            done.push(v);
                            let mut pending = pending.clone();
                            kont = next;
                            if pending.is_empty() {
                                match self.apply(done, *prim, &mut kont)? {
                                    Applied::Value(v) => ctl = Ctl::Value(v),
                                    Applied::Enter(e, env) => ctl = Ctl::Eval(e, env),
                                }
                            } else {
                                let first = pending.remove(0);
                                kont = kont.push(KKind::App {
                                    done,
                                    pending,
                                    env: env.clone(),
                                    prim: *prim,
                                });
                                ctl = Ctl::Eval(first, env.clone());
                            }
                        }
                        KKind::Set { cell } => {
                            *cell.val.borrow_mut() = v;
                            kont = next;
                            ctl = Ctl::Value(RV::Data(Value::Void));
                        }
                        KKind::Define { name } => {
                            self.globals.insert(*name, v);
                            kont = next;
                            ctl = Ctl::Value(RV::Data(Value::Void));
                        }
                        KKind::WcmKey { val, body, env } => {
                            kont = next.push(KKind::WcmVal {
                                key: v,
                                body: body.clone(),
                                env: env.clone(),
                            });
                            ctl = Ctl::Eval(val.clone(), env.clone());
                        }
                        KKind::WcmVal { key, body, env } => {
                            // Body is in tail position: attach the badge
                            // to the *enclosing* frame.
                            let key = key.as_data("with-continuation-mark key")?;
                            kont = next.with_mark(key, v);
                            ctl = Ctl::Eval(body.clone(), env.clone());
                        }
                        KKind::DwAfterPre { winder, thunk } => {
                            // Before-thunk finished: the winder becomes
                            // active for the body's dynamic extent.
                            self.winders.push(winder.clone());
                            kont = next.push(KKind::DwAfterBody {
                                winder: winder.clone(),
                            });
                            match self.apply(vec![thunk.clone()], None, &mut kont)? {
                                Applied::Value(v) => ctl = Ctl::Value(v),
                                Applied::Enter(e, env) => ctl = Ctl::Eval(e, env),
                            }
                        }
                        KKind::DwAfterBody { winder } => {
                            match self.winders.pop() {
                                Some(w) if Rc::ptr_eq(&w, winder) => {}
                                _ => return fail("dynamic-wind: winder stack corrupted"),
                            }
                            kont = next.push(KKind::DwAfterPost { result: v });
                            let post = winder.post.clone();
                            match self.apply(vec![post], None, &mut kont)? {
                                Applied::Value(v) => ctl = Ctl::Value(v),
                                Applied::Enter(e, env) => ctl = Ctl::Eval(e, env),
                            }
                        }
                        KKind::DwAfterPost { result } => {
                            // The after-thunk's value is discarded.
                            kont = next;
                            ctl = Ctl::Value(result.clone());
                        }
                        KKind::Unwind {
                            exits,
                            enters,
                            activating,
                            target_winders,
                            value,
                        } => {
                            if let Some(w) = activating {
                                self.winders.push(w.clone());
                            }
                            let mut exits = exits.clone();
                            let mut enters = enters.clone();
                            if let Some(w) = if exits.is_empty() {
                                None
                            } else {
                                Some(exits.remove(0))
                            } {
                                // Leaving w's extent: deactivate, then
                                // run its after-thunk.
                                match self.winders.pop() {
                                    Some(top) if Rc::ptr_eq(&top, &w) => {}
                                    _ => return fail("dynamic-wind: winder stack corrupted"),
                                }
                                kont = next.push(KKind::Unwind {
                                    exits,
                                    enters,
                                    activating: None,
                                    target_winders: target_winders.clone(),
                                    value: value.clone(),
                                });
                                match self.apply(vec![w.post.clone()], None, &mut kont)? {
                                    Applied::Value(v) => ctl = Ctl::Value(v),
                                    Applied::Enter(e, env) => ctl = Ctl::Eval(e, env),
                                }
                            } else if let Some(w) = if enters.is_empty() {
                                None
                            } else {
                                Some(enters.remove(0))
                            } {
                                // Entering w's extent: run its
                                // before-thunk, then activate it.
                                kont = next.push(KKind::Unwind {
                                    exits,
                                    enters,
                                    activating: Some(w.clone()),
                                    target_winders: target_winders.clone(),
                                    value: value.clone(),
                                });
                                match self.apply(vec![w.pre.clone()], None, &mut kont)? {
                                    Applied::Value(v) => ctl = Ctl::Value(v),
                                    Applied::Enter(e, env) => ctl = Ctl::Eval(e, env),
                                }
                            } else {
                                debug_assert_eq!(self.winders.len(), target_winders.len());
                                kont = next;
                                ctl = Ctl::Value(value.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    fn apply(&mut self, mut vals: Vec<RV>, prim: Option<PrimOp>, kont: &mut Kont) -> R<Applied> {
        if let Some(op) = prim {
            return Ok(Applied::Value(apply_prim(op, &vals)?));
        }
        let f = vals.remove(0);
        let args = vals;
        match f {
            RV::Closure(cl) => {
                let l = &cl.lambda;
                let required = l.params.len();
                if args.len() < required || (l.rest.is_none() && args.len() > required) {
                    return fail(format!("{}: arity mismatch, got {}", l.name, args.len()));
                }
                let mut env = cl.env.clone();
                let mut args = args;
                let restv = args.split_off(required);
                for (p, a) in l.params.iter().zip(args) {
                    env = env.bind(*p, a);
                }
                if let Some(r) = l.rest {
                    let mut lst = Value::Nil;
                    for v in restv.into_iter().rev() {
                        lst = Value::cons(v.as_data("rest argument")?, lst);
                    }
                    env = env.bind(r, RV::Data(lst));
                }
                Ok(Applied::Enter(Rc::new(l.body.clone()), env))
            }
            RV::Cont(k, target_winders) => {
                if args.len() != 1 {
                    return fail("continuation: expected 1 argument");
                }
                let value = args.into_iter().next().unwrap();
                let shared = shared_winders(&self.winders, &target_winders);
                if shared == self.winders.len() && shared == target_winders.len() {
                    // No winders to cross: a plain jump.
                    *kont = k;
                    return Ok(Applied::Value(value));
                }
                // Winders to cross: interpose an Unwind frame atop the
                // target that runs departed winders' after-thunks
                // (innermost first) and re-entered winders'
                // before-thunks (outermost first), then delivers the
                // value. Winder thunks here run with the target's
                // marks in view — fine for effect-only thunks, which
                // is all the differential generator produces.
                let exits: Vec<Rc<RWinder>> =
                    self.winders[shared..].iter().rev().cloned().collect();
                let enters: Vec<Rc<RWinder>> = target_winders[shared..].to_vec();
                *kont = k.push(KKind::Unwind {
                    exits,
                    enters,
                    activating: None,
                    target_winders,
                    value,
                });
                Ok(Applied::Value(RV::Data(Value::Void)))
            }
            RV::Builtin(b) => match b {
                Builtin::Prim(op) => Ok(Applied::Value(apply_prim(op, &args)?)),
                Builtin::List => {
                    let mut lst = Value::Nil;
                    for v in args.into_iter().rev() {
                        lst = Value::cons(v.as_data("list")?, lst);
                    }
                    Ok(Applied::Value(RV::Data(lst)))
                }
                Builtin::CallCc => {
                    if args.len() != 1 {
                        return fail("call/cc: expected 1 argument");
                    }
                    let f = args.into_iter().next().unwrap();
                    let k = RV::Cont(kont.clone(), self.winders.clone());
                    // Apply f to k in tail position.
                    self.apply(vec![f, k], None, kont)
                }
                Builtin::DynamicWind => {
                    if args.len() != 3 {
                        return fail("dynamic-wind: expected 3 arguments");
                    }
                    let mut it = args.into_iter();
                    let pre = it.next().unwrap();
                    let thunk = it.next().unwrap();
                    let post = it.next().unwrap();
                    let winder = Rc::new(RWinder {
                        pre: pre.clone(),
                        post,
                    });
                    *kont = kont.push(KKind::DwAfterPre { winder, thunk });
                    self.apply(vec![pre], None, kont)
                }
                Builtin::MarkList => {
                    if args.len() != 1 {
                        return fail("mark-list: expected 1 argument");
                    }
                    let key = args[0].as_data("mark-list")?;
                    let mut out: Vec<Value> = Vec::new();
                    let mut cur = kont.0.clone();
                    while let Some(f) = cur {
                        if let Some(v) = f.marks.get(&key) {
                            out.push(v.as_data("mark value")?);
                        }
                        cur = f.next.0.clone();
                    }
                    Ok(Applied::Value(RV::Data(Value::list(out))))
                }
                Builtin::MarkFirst => {
                    if args.len() != 2 {
                        return fail("mark-first: expected 2 arguments");
                    }
                    let key = args[0].as_data("mark-first")?;
                    let mut cur = kont.0.clone();
                    while let Some(f) = cur {
                        if let Some(v) = f.marks.get(&key) {
                            return Ok(Applied::Value(v));
                        }
                        cur = f.next.0.clone();
                    }
                    Ok(Applied::Value(args[1].clone()))
                }
                Builtin::Error => {
                    let msg: Vec<String> = args.iter().map(RV::show).collect();
                    fail(format!("error: {}", msg.join(" ")))
                }
            },
            other => fail(format!("not a procedure: {}", other.show())),
        }
    }
}

enum Applied {
    Value(RV),
    Enter(Rc<Expr>, Env),
}

fn apply_prim(op: PrimOp, args: &[RV]) -> R<RV> {
    let data: Vec<Value> = args
        .iter()
        .map(|a| a.as_data(op.name()))
        .collect::<R<Vec<_>>>()?;
    prim_op_value(op, &data)
        .map(RV::Data)
        .map_err(|e| RefError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> String {
        RefInterp::new().eval(src).unwrap()
    }

    #[test]
    fn arithmetic_and_calls() {
        assert_eq!(eval("(+ 1 (* 2 3))"), "7");
        assert_eq!(
            eval("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 6)"),
            "720"
        );
    }

    #[test]
    fn closures_and_state() {
        assert_eq!(
            eval(
                "(define (counter) (let ([n 0]) (lambda () (set! n (+ n 1)) n)))
                 (define c (counter)) (c) (c) (c)"
            ),
            "3"
        );
    }

    #[test]
    fn wcm_basic() {
        assert_eq!(eval("(with-continuation-mark 'k 1 (mark-list 'k))"), "(1)");
        assert_eq!(eval("(mark-first 'k 'none)"), "none");
    }

    #[test]
    fn tail_wcm_replaces() {
        assert_eq!(
            eval(
                "(define (go)
                   (with-continuation-mark 'k 1
                     (with-continuation-mark 'k 2 (mark-list 'k))))
                 (go)"
            ),
            "(2)"
        );
    }

    #[test]
    fn nontail_wcm_nests() {
        assert_eq!(
            eval(
                "(with-continuation-mark 'k 1
                   (car (cons (with-continuation-mark 'k 2 (mark-list 'k)) 0)))"
            ),
            "(2 1)"
        );
    }

    #[test]
    fn callcc_escape_and_marks() {
        assert_eq!(eval("(+ 1 (call/cc (lambda (k) (k 41))))"), "42");
        assert_eq!(
            eval(
                "(define saved #f)
                 (define r
                   (with-continuation-mark 'k 'live
                     (car (cons (call/cc (lambda (k) (set! saved k) (mark-list 'k))) 1))))
                 (define _ (let ([k saved]) (if k (begin (set! saved #f) (k '(again))) 0)))
                 r"
            ),
            "(again)"
        );
    }

    #[test]
    fn continuation_is_multi_shot() {
        assert_eq!(
            eval(
                "(define saved #f)
                 (define n 0)
                 (define v (call/cc (lambda (k) (set! saved k) 0)))
                 (set! n (+ n 1))
                 (if (< v 3) (saved (+ v 1)) (list v n))"
            ),
            "(3 4)"
        );
    }

    #[test]
    fn step_limit_fires() {
        let mut i = RefInterp::new();
        i.set_step_limit(1000);
        let err = i.eval("(define (loop) (loop)) (loop)").unwrap_err();
        assert!(err.is_step_limit(), "unexpected error: {err}");
        // A type error is not a step-limit error.
        let err = i.eval("(car 5)").unwrap_err();
        assert!(!err.is_step_limit());
    }

    #[test]
    fn dynamic_wind_normal_flow() {
        assert_eq!(
            eval(
                "(define log '())
                 (define (note t) (set! log (cons t log)))
                 (define r (dynamic-wind (lambda () (note 'pre))
                                         (lambda () (note 'body) 42)
                                         (lambda () (note 'post))))
                 (list r log)"
            ),
            "(42 (post body pre))"
        );
    }

    #[test]
    fn dynamic_wind_escape_runs_after_thunk() {
        assert_eq!(
            eval(
                "(define log '())
                 (define (note t) (set! log (cons t log)))
                 (define r (call/cc (lambda (k)
                   (dynamic-wind (lambda () (note 'pre))
                                 (lambda () (k 'out))
                                 (lambda () (note 'post))))))
                 (list r log)"
            ),
            "(out (post pre))"
        );
    }

    #[test]
    fn dynamic_wind_nested_escape_unwinds_innermost_first() {
        assert_eq!(
            eval(
                "(define log '())
                 (define (note t) (set! log (cons t log)))
                 (define r (call/cc (lambda (k)
                   (dynamic-wind (lambda () (note 'pre1))
                                 (lambda ()
                                   (dynamic-wind (lambda () (note 'pre2))
                                                 (lambda () (k 'out))
                                                 (lambda () (note 'post2))))
                                 (lambda () (note 'post1))))))
                 (list r log)"
            ),
            "(out (post1 post2 pre2 pre1))"
        );
    }

    #[test]
    fn dynamic_wind_reentry_reruns_before_thunk() {
        assert_eq!(
            eval(
                "(define saved #f)
                 (define log '())
                 (define (note t) (set! log (cons t log)))
                 (define n 0)
                 (define r (dynamic-wind
                             (lambda () (note 'pre))
                             (lambda ()
                               (call/cc (lambda (k) (set! saved k)))
                               (set! n (+ n 1))
                               n)
                             (lambda () (note 'post))))
                 (define _ (if (< r 3) ((let ([k saved]) k) 0) 0))
                 (list r log)"
            ),
            "(3 (post pre post pre post pre))"
        );
    }

    #[test]
    fn dynamic_wind_preserves_marks_across_jumps() {
        assert_eq!(
            eval(
                "(define log '())
                 (define (note t) (set! log (cons t log)))
                 (define r
                   (with-continuation-mark 'k 'outside
                     (car (cons
                       (call/cc (lambda (k)
                         (dynamic-wind (lambda () (note 'pre))
                                       (lambda ()
                                         (with-continuation-mark 'k 'inside
                                           (car (cons (k (mark-list 'k)) 0))))
                                       (lambda () (note 'post)))))
                       0))))
                 (list r log)"
            ),
            "((inside outside) (post pre))"
        );
    }

    #[test]
    fn model_rejects_raw_attachments() {
        let mut i = RefInterp::new();
        // Raw attachment ops only exist after lowering; in the model the
        // surface form names are unbound globals.
        assert!(i
            .eval("(call-setting-continuation-attachment 1 (lambda () 2))")
            .is_err());
    }
}
